#include "noc/routing.hpp"

#include <gtest/gtest.h>

namespace puno::noc {
namespace {

TEST(Coord, RoundTrip) {
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(node_of(coord_of(n, 4), 4), n);
  }
}

TEST(Coord, Layout4x4) {
  EXPECT_EQ(coord_of(0, 4), (Coord{0, 0}));
  EXPECT_EQ(coord_of(3, 4), (Coord{3, 0}));
  EXPECT_EQ(coord_of(4, 4), (Coord{0, 1}));
  EXPECT_EQ(coord_of(15, 4), (Coord{3, 3}));
}

TEST(RouteXy, SelfRoutesLocal) {
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(route_xy(n, n, 4), Port::kLocal);
  }
}

TEST(RouteXy, XResolvedBeforeY) {
  // From node 0 (0,0) to node 15 (3,3): east first.
  EXPECT_EQ(route_xy(0, 15, 4), Port::kEast);
  // From node 3 (3,0) to node 15 (3,3): same column, go south.
  EXPECT_EQ(route_xy(3, 15, 4), Port::kSouth);
  // From node 15 back to 0: west first.
  EXPECT_EQ(route_xy(15, 0, 4), Port::kWest);
  // From node 12 (0,3) to 0 (0,0): north.
  EXPECT_EQ(route_xy(12, 0, 4), Port::kNorth);
}

TEST(RouteXy, EveryHopDecreasesDistance) {
  // Property: following the route always reaches the destination in exactly
  // hop_distance steps, never leaving the mesh.
  constexpr std::uint32_t kWidth = 4;
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      NodeId here = src;
      std::uint32_t steps = 0;
      while (here != dst) {
        const Port p = route_xy(here, dst, kWidth);
        ASSERT_NE(p, Port::kLocal);
        Coord c = coord_of(here, kWidth);
        switch (p) {
          case Port::kEast: ++c.x; break;
          case Port::kWest: --c.x; break;
          case Port::kSouth: ++c.y; break;
          case Port::kNorth: --c.y; break;
          case Port::kLocal: break;
        }
        ASSERT_GE(c.x, 0);
        ASSERT_LT(c.x, static_cast<std::int32_t>(kWidth));
        ASSERT_GE(c.y, 0);
        ASSERT_LT(c.y, static_cast<std::int32_t>(kWidth));
        here = node_of(c, kWidth);
        ++steps;
        ASSERT_LE(steps, 8u) << "route must terminate";
      }
      EXPECT_EQ(steps, hop_distance(src, dst, kWidth));
    }
  }
}

TEST(HopDistance, Symmetric) {
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      EXPECT_EQ(hop_distance(a, b, 4), hop_distance(b, a, 4));
    }
  }
}

TEST(HopDistance, KnownValues) {
  EXPECT_EQ(hop_distance(0, 0, 4), 0u);
  EXPECT_EQ(hop_distance(0, 3, 4), 3u);
  EXPECT_EQ(hop_distance(0, 15, 4), 6u);
  EXPECT_EQ(hop_distance(5, 6, 4), 1u);
}

TEST(Port, Names) {
  EXPECT_STREQ(to_string(Port::kLocal), "L");
  EXPECT_STREQ(to_string(Port::kNorth), "N");
  EXPECT_STREQ(to_string(Port::kEast), "E");
}

}  // namespace
}  // namespace puno::noc
