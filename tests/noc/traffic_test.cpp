#include "noc/traffic.hpp"

#include <gtest/gtest.h>

namespace puno::noc {
namespace {

TEST(TrafficPatternFn, TransposeMapsCoordinates) {
  sim::Rng rng(1, 0);
  // Node 1 = (1,0) -> (0,1) = node 4 on a 4-wide mesh.
  EXPECT_EQ(pattern_destination(TrafficPattern::kTranspose, 1, 4, rng), 4);
  EXPECT_EQ(pattern_destination(TrafficPattern::kTranspose, 4, 4, rng), 1);
  // Diagonal nodes map to themselves; the generator must divert.
  EXPECT_NE(pattern_destination(TrafficPattern::kTranspose, 5, 4, rng), 5);
}

TEST(TrafficPatternFn, BitComplement) {
  sim::Rng rng(1, 0);
  EXPECT_EQ(pattern_destination(TrafficPattern::kBitComplement, 0, 4, rng),
            15);
  EXPECT_EQ(pattern_destination(TrafficPattern::kBitComplement, 15, 4, rng),
            0);
}

TEST(TrafficPatternFn, NearestNeighbourWrapsWithinRow) {
  sim::Rng rng(1, 0);
  EXPECT_EQ(
      pattern_destination(TrafficPattern::kNearestNeighbour, 0, 4, rng), 1);
  EXPECT_EQ(
      pattern_destination(TrafficPattern::kNearestNeighbour, 3, 4, rng), 0);
  EXPECT_EQ(
      pattern_destination(TrafficPattern::kNearestNeighbour, 7, 4, rng), 4);
}

TEST(TrafficPatternFn, UniformNeverSelectsSelf) {
  sim::Rng rng(5, 0);
  for (int i = 0; i < 2000; ++i) {
    const NodeId src = static_cast<NodeId>(i % 16);
    EXPECT_NE(pattern_destination(TrafficPattern::kUniformRandom, src, 4, rng),
              src);
  }
}

TEST(TrafficPatternFn, HotspotConcentratesOnNodeZero) {
  sim::Rng rng(7, 0);
  int to_zero = 0;
  constexpr int kTrials = 8000;
  for (int i = 0; i < kTrials; ++i) {
    if (pattern_destination(TrafficPattern::kHotspot, 5, 4, rng) == 0) {
      ++to_zero;
    }
  }
  const double frac = static_cast<double>(to_zero) / kTrials;
  EXPECT_GT(frac, 0.25) << "25% explicit + uniform share";
  EXPECT_LT(frac, 0.40);
}

TEST(TrafficGenerator, LowLoadDeliversEverythingWithLowLatency) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  TrafficGenerator gen(kernel, mesh, cfg, TrafficPattern::kUniformRandom,
                       /*rate=*/0.02);
  kernel.add_tickable(gen);
  kernel.run_for(5000);
  kernel.run_until([&] { return mesh.idle(); }, 2000);
  const auto r = gen.results(5000);
  EXPECT_GT(r.injected, 500u);
  EXPECT_EQ(r.delivered, r.injected) << "low load: everything drains";
  EXPECT_GT(r.avg_latency, 10.0) << "at least the zero-load latency";
  EXPECT_LT(r.avg_latency, 60.0) << "no queueing to speak of";
}

TEST(TrafficGenerator, ThroughputSaturatesUnderOverload) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  // 0.9 packets/node/cycle of 5-flit packets is ~4x beyond the mesh's
  // sustainable uniform throughput: delivery must fall far behind injection.
  TrafficGenerator gen(kernel, mesh, cfg, TrafficPattern::kUniformRandom,
                       /*rate=*/0.9, /*payload_bytes=*/64);
  kernel.add_tickable(gen);
  kernel.run_for(3000);
  const auto r = gen.results(3000);
  EXPECT_LT(r.delivered, r.injected);
  EXPECT_LT(r.throughput, 0.5);
  EXPECT_GT(r.throughput, 0.02);
}

TEST(TrafficGenerator, HigherLoadMeansHigherLatency) {
  auto run_at = [](double rate) {
    sim::Kernel kernel;
    NocConfig cfg;
    Mesh mesh(kernel, cfg);
    kernel.add_tickable(mesh);
    TrafficGenerator gen(kernel, mesh, cfg, TrafficPattern::kUniformRandom,
                         rate);
    kernel.add_tickable(gen);
    kernel.run_for(4000);
    return gen.results(4000).avg_latency;
  };
  EXPECT_GT(run_at(0.20), run_at(0.02));
}

TEST(TrafficGenerator, NearestNeighbourOutperformsUniform) {
  auto throughput_of = [](TrafficPattern p) {
    sim::Kernel kernel;
    NocConfig cfg;
    Mesh mesh(kernel, cfg);
    kernel.add_tickable(mesh);
    TrafficGenerator gen(kernel, mesh, cfg, p, /*rate=*/0.5);
    kernel.add_tickable(gen);
    kernel.run_for(4000);
    return gen.results(4000).throughput;
  };
  EXPECT_GT(throughput_of(TrafficPattern::kNearestNeighbour),
            throughput_of(TrafficPattern::kUniformRandom))
      << "single-hop traffic sustains more load than cross-chip traffic";
}

}  // namespace
}  // namespace puno::noc
