// Mesh-width property sweep: routing and delivery must hold on any square
// mesh, not just the paper's 4x4.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "noc/mesh.hpp"
#include "sim/rng.hpp"

namespace puno::noc {
namespace {

struct TestPayload final : PacketPayload {
  explicit TestPayload(int v) : value(v) {}
  int value;
};

class MeshWidthTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MeshWidthTest, RoutingTerminatesForAllPairs) {
  const std::uint32_t width = GetParam();
  const auto n = static_cast<NodeId>(width * width);
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      NodeId here = src;
      std::uint32_t steps = 0;
      while (here != dst) {
        const Port p = route_xy(here, dst, width);
        ASSERT_NE(p, Port::kLocal);
        Coord c = coord_of(here, width);
        switch (p) {
          case Port::kEast: ++c.x; break;
          case Port::kWest: --c.x; break;
          case Port::kSouth: ++c.y; break;
          case Port::kNorth: --c.y; break;
          case Port::kLocal: break;
        }
        here = node_of(c, width);
        ASSERT_LE(++steps, 2 * width);
      }
      ASSERT_EQ(steps, hop_distance(src, dst, width));
    }
  }
}

TEST_P(MeshWidthTest, AllToAllTrafficDelivered) {
  const std::uint32_t width = GetParam();
  sim::Kernel kernel;
  NocConfig cfg;
  cfg.mesh_width = width;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  const auto n = static_cast<NodeId>(width * width);

  int delivered = 0;
  for (NodeId d = 0; d < n; ++d) {
    mesh.set_handler(d, [&](Packet) { ++delivered; });
  }
  int sent = 0;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId d = 0; d < n; ++d) {
      if (s == d) continue;
      mesh.send(s, d, VNet::kRequest, 0, std::make_shared<TestPayload>(1));
      ++sent;
    }
  }
  kernel.run_until([&] { return delivered == sent && mesh.idle(); },
                   200000);
  EXPECT_EQ(delivered, sent);
  EXPECT_TRUE(mesh.idle());
}

TEST_P(MeshWidthTest, C2CLatencyGrowsWithWidth) {
  const std::uint32_t width = GetParam();
  sim::Kernel k1, k2;
  NocConfig small;
  small.mesh_width = 2;
  NocConfig cfg;
  cfg.mesh_width = width;
  Mesh m_small(k1, small);
  Mesh m(k2, cfg);
  if (width > 2) {
    EXPECT_GT(m.average_c2c_latency(), m_small.average_c2c_latency());
  } else {
    EXPECT_EQ(m.average_c2c_latency(), m_small.average_c2c_latency());
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MeshWidthTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 8u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace puno::noc
