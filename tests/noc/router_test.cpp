// Router-level unit tests: a single router wired to scripted sinks, so VC
// allocation, credits and wormhole behaviour can be checked in isolation.
#include "noc/router.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace puno::noc {
namespace {

struct CapturedFlit {
  std::uint32_t vc;
  std::uint64_t packet_id;
  bool is_head;
  bool is_tail;
  Cycle at;
};

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : traversals_(kernel_.stats().counter("t")),
        router_(kernel_, cfg_, /*id=*/5, traversals_, inflight_) {
    // Node 5 of a 4x4 mesh (coord 1,1). Capture everything leaving each
    // port; give every output ample credits unless a test overrides.
    for (std::uint32_t p = 0; p < kNumPorts; ++p) {
      router_.connect_output(
          static_cast<Port>(p),
          [this, p](std::uint32_t vc, Flit f) {
            out_[p].push_back(CapturedFlit{vc, f.packet->id, f.is_head,
                                           f.is_tail, kernel_.now()});
          },
          /*initial_credits=*/cfg_.vc_depth);
      router_.connect_input(static_cast<Port>(p),
                            [this, p](std::uint32_t vc) {
                              credits_returned_[p].push_back(vc);
                            });
    }
  }

  PacketRef make_packet(NodeId dst, std::uint32_t flits,
                        VNet vnet = VNet::kRequest) {
    PacketRef pkt = pool_.allocate();
    pkt->id = next_id_++;
    pkt->src = 0;
    pkt->dst = dst;
    pkt->vnet = vnet;
    pkt->num_flits = flits;
    return pkt;
  }

  void inject(Port p, std::uint32_t vc, const PacketRef& pkt) {
    for (std::uint32_t i = 0; i < pkt->num_flits; ++i) {
      Flit f;
      f.packet = pkt;
      f.is_head = i == 0;
      f.is_tail = i + 1 == pkt->num_flits;
      router_.receive_flit(p, vc, std::move(f));
    }
  }

  void run(Cycle cycles) {
    for (Cycle c = 0; c < cycles; ++c) {
      router_.tick(kernel_.now());
      kernel_.step();
    }
  }

  // The pool must outlive the kernel: undrained link events hold PacketRefs
  // whose destruction returns slots to the pool.
  PacketPool pool_;
  sim::Kernel kernel_;
  NocConfig cfg_;
  std::uint64_t inflight_ = 0;
  sim::Counter& traversals_;
  Router router_;
  std::vector<CapturedFlit> out_[kNumPorts];
  std::vector<std::uint32_t> credits_returned_[kNumPorts];
  std::uint64_t next_id_ = 1;
};

TEST_F(RouterTest, RoutesEastWhenDstIsEast) {
  // Node 5 is (1,1); node 7 is (3,1): east.
  inject(Port::kLocal, 0, make_packet(7, 1));
  run(12);
  EXPECT_EQ(out_[static_cast<int>(Port::kEast)].size(), 1u);
}

TEST_F(RouterTest, RoutesToLocalForSelf) {
  inject(Port::kWest, 0, make_packet(5, 1));
  run(12);
  EXPECT_EQ(out_[static_cast<int>(Port::kLocal)].size(), 1u);
}

TEST_F(RouterTest, PipelineLatencyIsRespected) {
  inject(Port::kLocal, 0, make_packet(7, 1));
  // With 4 pipeline stages, the flit cannot traverse before cycle 3.
  router_.tick(0);
  kernel_.step();
  router_.tick(1);
  kernel_.step();
  EXPECT_TRUE(out_[static_cast<int>(Port::kEast)].empty());
  run(10);
  ASSERT_EQ(out_[static_cast<int>(Port::kEast)].size(), 1u);
  EXPECT_GE(out_[static_cast<int>(Port::kEast)][0].at, 3u);
}

TEST_F(RouterTest, WormholeKeepsPacketContiguousPerVc) {
  auto a = make_packet(7, 3);
  inject(Port::kLocal, 0, a);
  run(20);
  const auto& flits = out_[static_cast<int>(Port::kEast)];
  ASSERT_EQ(flits.size(), 3u);
  EXPECT_TRUE(flits[0].is_head);
  EXPECT_TRUE(flits[2].is_tail);
  EXPECT_EQ(flits[0].packet_id, a->id);
  // All on the same output VC.
  EXPECT_EQ(flits[0].vc, flits[1].vc);
  EXPECT_EQ(flits[1].vc, flits[2].vc);
}

TEST_F(RouterTest, OneFlitPerOutputPortPerCycle) {
  inject(Port::kLocal, 0, make_packet(7, 4));
  run(20);
  const auto& flits = out_[static_cast<int>(Port::kEast)];
  ASSERT_EQ(flits.size(), 4u);
  for (std::size_t i = 1; i < flits.size(); ++i) {
    EXPECT_GT(flits[i].at, flits[i - 1].at);
  }
}

TEST_F(RouterTest, TwoInputsSameOutputArbitrated) {
  // Two single-flit packets from different input ports to the same output.
  inject(Port::kWest, 0, make_packet(7, 1));
  inject(Port::kNorth, 0, make_packet(7, 1));
  run(20);
  const auto& flits = out_[static_cast<int>(Port::kEast)];
  ASSERT_EQ(flits.size(), 2u);
  EXPECT_NE(flits[0].at, flits[1].at) << "output port serializes";
}

TEST_F(RouterTest, DistinctOutputsProceedInParallel) {
  inject(Port::kWest, 0, make_packet(7, 1));   // east
  inject(Port::kNorth, 1, make_packet(4, 1));  // west (node 4 is (0,1))
  run(20);
  ASSERT_EQ(out_[static_cast<int>(Port::kEast)].size(), 1u);
  ASSERT_EQ(out_[static_cast<int>(Port::kWest)].size(), 1u);
  EXPECT_EQ(out_[static_cast<int>(Port::kEast)][0].at,
            out_[static_cast<int>(Port::kWest)][0].at);
}

TEST_F(RouterTest, CreditsReturnedForForwardedFlits) {
  inject(Port::kWest, 2, make_packet(7, 3));
  run(20);
  EXPECT_EQ(credits_returned_[static_cast<int>(Port::kWest)].size(), 3u);
  for (std::uint32_t vc : credits_returned_[static_cast<int>(Port::kWest)]) {
    EXPECT_EQ(vc, 2u);
  }
}

TEST_F(RouterTest, StallsWithoutCreditsAndResumesOnReturn) {
  // Exhaust the east output's VC credits first.
  for (std::uint32_t i = 0; i < cfg_.vc_depth; ++i) {
    inject(Port::kLocal, 0, make_packet(7, 1));
  }
  run(40);
  const auto sent_before = out_[static_cast<int>(Port::kEast)].size();
  EXPECT_EQ(sent_before, cfg_.vc_depth) << "one VC's credits exhausted";

  inject(Port::kLocal, 0, make_packet(7, 1));
  run(10);
  EXPECT_EQ(out_[static_cast<int>(Port::kEast)].size(), sent_before)
      << "no credits -> no traversal";

  router_.return_credit(Port::kEast, out_[static_cast<int>(Port::kEast)][0].vc);
  run(10);
  EXPECT_EQ(out_[static_cast<int>(Port::kEast)].size(), sent_before + 1);
}

TEST_F(RouterTest, VnetVcPartitioningIsRespected) {
  auto req = make_packet(7, 1, VNet::kRequest);
  auto rsp = make_packet(7, 1, VNet::kResponse);
  inject(Port::kWest, 0, req);  // request vnet VCs: 0,1
  inject(Port::kWest, 4, rsp);  // response vnet VCs: 4,5
  run(20);
  const auto& flits = out_[static_cast<int>(Port::kEast)];
  ASSERT_EQ(flits.size(), 2u);
  for (const auto& f : flits) {
    if (f.packet_id == req->id) EXPECT_LT(f.vc, 2u);
    if (f.packet_id == rsp->id) EXPECT_GE(f.vc, 4u);
  }
}

TEST_F(RouterTest, IdleReflectsBufferedFlits) {
  EXPECT_TRUE(router_.idle());
  inject(Port::kLocal, 0, make_packet(7, 1));
  EXPECT_FALSE(router_.idle());
  run(20);
  EXPECT_TRUE(router_.idle());
}

TEST_F(RouterTest, TraversalCounterCountsEveryFlit) {
  // vc_depth (4) flits fit the input buffer and the downstream credits.
  inject(Port::kLocal, 0, make_packet(7, 4));
  run(30);
  EXPECT_EQ(traversals_.value(), 4u);
}

}  // namespace
}  // namespace puno::noc
