// ActiveSet unit tests: membership, ascending-id iteration order across
// word boundaries, and prune-during-iteration semantics.
#include "noc/active_set.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace puno::noc {
namespace {

TEST(ActiveSetTest, StartsEmpty) {
  ActiveSet s(100);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(99));
}

TEST(ActiveSetTest, AddRemoveContains) {
  ActiveSet s(130);  // three 64-bit words
  for (const NodeId id : {0u, 63u, 64u, 127u, 128u, 129u}) {
    s.add(id);
    EXPECT_TRUE(s.contains(id));
  }
  EXPECT_EQ(s.count(), 6u);
  s.add(64);  // re-add is idempotent
  EXPECT_EQ(s.count(), 6u);
  s.remove(64);
  EXPECT_FALSE(s.contains(64));
  EXPECT_EQ(s.count(), 5u);
  s.remove(64);  // re-remove is idempotent
  EXPECT_EQ(s.count(), 5u);
}

TEST(ActiveSetTest, IteratesInAscendingIdOrderAcrossWords) {
  ActiveSet s(200);
  const std::vector<NodeId> ids{3, 0, 150, 63, 64, 199, 65};
  for (const NodeId id : ids) s.add(id);
  std::vector<NodeId> visited;
  s.for_each_prune([&visited](NodeId id) {
    visited.push_back(id);
    return true;
  });
  EXPECT_EQ(visited, (std::vector<NodeId>{0, 3, 63, 64, 65, 150, 199}));
  EXPECT_EQ(s.count(), 7u);  // all kept
}

TEST(ActiveSetTest, PruneRemovesMembersWhoseFnReturnsFalse) {
  ActiveSet s(128);
  for (NodeId id = 0; id < 128; ++id) s.add(id);
  s.for_each_prune([](NodeId id) { return id % 3 == 0; });
  EXPECT_EQ(s.count(), 43u);  // ceil(128 / 3)
  for (NodeId id = 0; id < 128; ++id) {
    EXPECT_EQ(s.contains(id), id % 3 == 0) << "id " << id;
  }
}

TEST(ActiveSetTest, MemberAddedAheadOfScanIsVisitedSameSweep) {
  ActiveSet s(128);
  s.add(10);
  std::vector<NodeId> visited;
  s.for_each_prune([&s, &visited](NodeId id) {
    visited.push_back(id);
    if (id == 10) s.add(100);  // ahead of the scan: must be picked up
    return false;              // drop everyone after visiting
  });
  EXPECT_EQ(visited, (std::vector<NodeId>{10, 100}));
  EXPECT_TRUE(s.empty());
}

TEST(ActiveSetTest, ResizeClearsMembership) {
  ActiveSet s(64);
  s.add(5);
  s.resize(64);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace puno::noc
