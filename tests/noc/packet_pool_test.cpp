// PacketPool / PacketRef unit tests: refcount semantics, free-list
// recycling, and the steady-state no-growth contract.
#include "noc/packet_pool.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace puno::noc {
namespace {

TEST(PacketPoolTest, AllocateHandsOutFreshPacket) {
  PacketPool pool;
  PacketRef p = pool.allocate();
  ASSERT_TRUE(static_cast<bool>(p));
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(p->num_flits, 1u);  // Packet's default
  p->id = 42;
  EXPECT_EQ((*p).id, 42u);
}

TEST(PacketPoolTest, LastHandleReturnsSlotToPool) {
  PacketPool pool;
  {
    PacketRef p = pool.allocate();
    PacketRef copy = p;
    EXPECT_EQ(pool.live(), 1u);  // two handles, one packet
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPoolTest, CopyAndMoveSemantics) {
  PacketPool pool;
  PacketRef a = pool.allocate();
  a->id = 7;
  PacketRef b = a;            // copy: both observe the same packet
  EXPECT_EQ(b->id, 7u);
  PacketRef c = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(c->id, 7u);
  b.reset();
  EXPECT_EQ(pool.live(), 1u);  // c still holds it
  c.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPoolTest, CopyAssignOverPreviousHandleReleasesIt) {
  PacketPool pool;
  PacketRef a = pool.allocate();
  PacketRef b = pool.allocate();
  EXPECT_EQ(pool.live(), 2u);
  b = a;  // b's original packet must go back to the free list
  EXPECT_EQ(pool.live(), 1u);
  PacketRef* self = &b;
  b = *self;  // self-assign is a no-op
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_TRUE(static_cast<bool>(b));
}

TEST(PacketPoolTest, RecyclesSlotsWithoutGrowing) {
  PacketPool pool;
  (void)pool.allocate();  // force the first chunk
  const std::size_t cap = pool.capacity();
  EXPECT_GT(cap, 0u);
  // Steady-state churn far beyond one chunk's worth must not grow the arena
  // as long as live() stays within it.
  for (int i = 0; i < 1000; ++i) {
    PacketRef p = pool.allocate();
    p->id = static_cast<std::uint64_t>(i);
  }
  EXPECT_EQ(pool.capacity(), cap);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPoolTest, GrowsWhenLivePacketsExceedAChunk) {
  PacketPool pool;
  std::vector<PacketRef> held;
  for (int i = 0; i < 200; ++i) held.push_back(pool.allocate());
  EXPECT_EQ(pool.live(), 200u);
  EXPECT_GE(pool.capacity(), 200u);
  // Each held packet is distinct.
  for (std::size_t i = 0; i < held.size(); ++i) {
    held[i]->id = i;
  }
  for (std::size_t i = 0; i < held.size(); ++i) {
    EXPECT_EQ(held[i]->id, i);
  }
  held.clear();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPoolTest, ReallocatedSlotIsReinitialized) {
  PacketPool pool;
  {
    PacketRef p = pool.allocate();
    p->id = 99;
    p->num_flits = 5;
  }
  PacketRef q = pool.allocate();  // same slot, recycled
  EXPECT_EQ(q->id, 0u);
  EXPECT_EQ(q->num_flits, 1u);  // back to the Packet default
}

}  // namespace
}  // namespace puno::noc
