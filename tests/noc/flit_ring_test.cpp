// FlitRing unit tests: wraparound, inline vs spilled storage, and the
// pop_back fault-injection path.
#include "noc/flit_ring.hpp"

#include <gtest/gtest.h>

#include "noc/packet_pool.hpp"

namespace puno::noc {
namespace {

Flit make_flit(PacketPool& pool, std::uint64_t id, Cycle ready = 0) {
  Flit f;
  f.packet = pool.allocate();
  f.packet->id = id;
  f.ready_at = ready;
  return f;
}

TEST(FlitRingTest, StartsEmptyWithSetCapacity) {
  FlitRing ring;
  ring.set_capacity(4);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.empty());
  EXPECT_FALSE(ring.full());
}

TEST(FlitRingTest, FifoOrderAcrossWraparound) {
  PacketPool pool;
  FlitRing ring;
  ring.set_capacity(4);
  // Fill, drain two, refill: head wraps past the end of the storage.
  for (std::uint64_t i = 0; i < 4; ++i) ring.push_back(make_flit(pool, i));
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.front().packet->id, 0u);
  ring.pop_front();
  ring.pop_front();
  ring.push_back(make_flit(pool, 4));
  ring.push_back(make_flit(pool, 5));
  EXPECT_TRUE(ring.full());
  for (std::uint64_t want = 2; want <= 5; ++want) {
    ASSERT_FALSE(ring.empty());
    EXPECT_EQ(ring.front().packet->id, want);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(FlitRingTest, ManyLapsKeepFifoOrder) {
  PacketPool pool;
  FlitRing ring;
  ring.set_capacity(3);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (int lap = 0; lap < 100; ++lap) {
    while (!ring.full()) ring.push_back(make_flit(pool, next_push++));
    while (!ring.empty()) {
      EXPECT_EQ(ring.front().packet->id, next_pop++);
      ring.pop_front();
    }
  }
  EXPECT_EQ(next_pop, 300u);
}

TEST(FlitRingTest, SpillsBeyondInlineCapacity) {
  PacketPool pool;
  FlitRing ring;
  const std::uint32_t depth = FlitRing::kInline * 2;
  ring.set_capacity(depth);
  EXPECT_EQ(ring.capacity(), depth);
  for (std::uint64_t i = 0; i < depth; ++i) ring.push_back(make_flit(pool, i));
  EXPECT_TRUE(ring.full());
  for (std::uint64_t i = 0; i < depth; ++i) {
    EXPECT_EQ(ring.front().packet->id, i);
    ring.pop_front();
  }
  EXPECT_TRUE(ring.empty());
}

TEST(FlitRingTest, PopBackDropsYoungest) {
  PacketPool pool;
  FlitRing ring;
  ring.set_capacity(4);
  for (std::uint64_t i = 0; i < 3; ++i) ring.push_back(make_flit(pool, i));
  ring.pop_back();
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.front().packet->id, 0u);
  ring.pop_front();
  EXPECT_EQ(ring.front().packet->id, 1u);
}

TEST(FlitRingTest, PopReleasesThePacketHandle) {
  PacketPool pool;
  FlitRing ring;
  ring.set_capacity(4);
  ring.push_back(make_flit(pool, 7));
  EXPECT_EQ(pool.live(), 1u);
  ring.pop_front();
  EXPECT_EQ(pool.live(), 0u) << "pop_front must release the slot's PacketRef";
  ring.push_back(make_flit(pool, 8));
  ring.pop_back();
  EXPECT_EQ(pool.live(), 0u) << "pop_back must release the slot's PacketRef";
}

}  // namespace
}  // namespace puno::noc
