#include "noc/mesh.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sim/rng.hpp"

namespace puno::noc {
namespace {

struct TestPayload final : PacketPayload {
  explicit TestPayload(int v) : value(v) {}
  int value;
};

TEST(Mesh, DeliversSingleControlPacket) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  int got = 0;
  NodeId from = kInvalidNode;
  mesh.set_handler(15, [&](Packet p) {
    got = static_cast<const TestPayload*>(p.payload.get())->value;
    from = p.src;
  });
  mesh.send(0, 15, VNet::kRequest, 0, std::make_shared<TestPayload>(42));
  kernel.run_until([&] { return got == 42; }, 1000);
  EXPECT_EQ(got, 42);
  EXPECT_EQ(from, 0);
}

TEST(Mesh, LatencyScalesWithDistance) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  Cycle t_near = 0, t_far = 0;
  mesh.set_handler(1, [&](Packet) { t_near = kernel.now(); });
  mesh.set_handler(15, [&](Packet) { t_far = kernel.now(); });
  mesh.send(0, 1, VNet::kRequest, 0, std::make_shared<TestPayload>(1));
  mesh.send(0, 15, VNet::kRequest, 0, std::make_shared<TestPayload>(2));
  kernel.run_until([&] { return t_near != 0 && t_far != 0; }, 1000);
  EXPECT_GT(t_far, t_near) << "6 hops must take longer than 1 hop";
}

TEST(Mesh, DataPacketsCarryMultipleFlits) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  bool got = false;
  mesh.set_handler(3, [&](Packet p) {
    got = true;
    EXPECT_EQ(p.src, 0);
  });
  // 64-byte line at 16-byte flits: 1 head + 4 body.
  mesh.send(0, 3, VNet::kResponse, 64, std::make_shared<TestPayload>(7));
  kernel.run_until([&] { return got; }, 1000);
  ASSERT_TRUE(got);
  // 5 flits crossing 4 routers each (0 -> 1 -> 2 -> 3, including the
  // ejecting router's switch).
  EXPECT_EQ(mesh.router_traversals(), 5u * 4u);
}

TEST(Mesh, SelfSendBypassesNetwork) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  bool got = false;
  mesh.set_handler(5, [&](Packet p) {
    got = true;
    EXPECT_EQ(p.src, 5);
  });
  mesh.send(5, 5, VNet::kRequest, 64, std::make_shared<TestPayload>(1));
  kernel.run_until([&] { return got; }, 100);
  EXPECT_TRUE(got);
  EXPECT_EQ(mesh.router_traversals(), 0u) << "same-tile messages stay local";
}

TEST(Mesh, TraversalCountMatchesHopsTimesFlits) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  int got = 0;
  for (NodeId d = 1; d < 16; ++d) {
    mesh.set_handler(d, [&](Packet) { ++got; });
  }
  // One single-flit packet from 0 to each other node.
  std::uint64_t expected = 0;
  for (NodeId d = 1; d < 16; ++d) {
    mesh.send(0, d, VNet::kRequest, 0, std::make_shared<TestPayload>(d));
    expected += hop_distance(0, d, cfg.mesh_width) + 1;  // +1: source router
  }
  kernel.run_until([&] { return got == 15 && mesh.idle(); }, 5000);
  EXPECT_EQ(got, 15);
  EXPECT_EQ(mesh.router_traversals(), expected);
}

TEST(Mesh, ManyToOneAllArrive) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  std::vector<int> got;
  mesh.set_handler(0, [&](Packet p) {
    got.push_back(static_cast<const TestPayload*>(p.payload.get())->value);
  });
  for (NodeId s = 1; s < 16; ++s) {
    for (int k = 0; k < 8; ++k) {
      mesh.send(s, 0, VNet::kResponse, 64,
                std::make_shared<TestPayload>(s * 100 + k));
    }
  }
  kernel.run_until([&] { return got.size() == 15u * 8u; }, 50000);
  EXPECT_EQ(got.size(), 15u * 8u) << "hotspot traffic must fully drain";
}

TEST(Mesh, AllVnetsDeliver) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);

  int got = 0;
  mesh.set_handler(9, [&](Packet) { ++got; });
  mesh.send(2, 9, VNet::kRequest, 0, std::make_shared<TestPayload>(1));
  mesh.send(2, 9, VNet::kForward, 0, std::make_shared<TestPayload>(2));
  mesh.send(2, 9, VNet::kResponse, 0, std::make_shared<TestPayload>(3));
  kernel.run_until([&] { return got == 3; }, 1000);
  EXPECT_EQ(got, 3);
}

TEST(Mesh, RandomTrafficStressAllDelivered) {
  // Property-style stress: thousands of random packets of random sizes and
  // vnets; every single one must be delivered and the network must drain.
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  kernel.add_tickable(mesh);
  sim::Rng rng(123, 0);

  std::map<int, int> outstanding;  // value -> count
  int delivered = 0;
  for (NodeId d = 0; d < 16; ++d) {
    mesh.set_handler(d, [&](Packet p) {
      ++delivered;
      const int v = static_cast<const TestPayload*>(p.payload.get())->value;
      --outstanding[v];
    });
  }

  constexpr int kPackets = 3000;
  int sent = 0;
  // Inject over time to avoid unbounded endpoint queues in one cycle.
  std::function<void()> injector = [&] {
    for (int burst = 0; burst < 8 && sent < kPackets; ++burst, ++sent) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % 16);
      const auto vnet = static_cast<VNet>(rng.next_below(3));
      const std::uint32_t bytes = rng.next_bool(0.4) ? 64 : 0;
      ++outstanding[sent];
      mesh.send(src, dst, vnet, bytes, std::make_shared<TestPayload>(sent));
    }
    if (sent < kPackets) kernel.schedule(2, injector);
  };
  kernel.schedule(1, injector);

  kernel.run_until(
      [&] { return delivered == kPackets && mesh.idle(); }, 2'000'000);
  EXPECT_EQ(delivered, kPackets);
  EXPECT_TRUE(mesh.idle());
  for (const auto& [v, count] : outstanding) {
    EXPECT_EQ(count, 0) << "packet " << v << " delivered wrong # of times";
  }
}

TEST(Mesh, AverageC2CLatencyMatchesAnalytical) {
  sim::Kernel kernel;
  NocConfig cfg;
  Mesh mesh(kernel, cfg);
  // 4x4 mesh: mean hop distance over ordered pairs = 8/3; per-hop cost =
  // pipeline (4) + link (1) = 5 -> 13.33 -> truncated 13.
  EXPECT_EQ(mesh.average_c2c_latency(), 13u);
}

TEST(Mesh, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Kernel kernel;
    NocConfig cfg;
    Mesh mesh(kernel, cfg);
    kernel.add_tickable(mesh);
    sim::Rng rng(77, 0);
    int delivered = 0;
    for (NodeId d = 0; d < 16; ++d) {
      mesh.set_handler(d, [&](Packet) { ++delivered; });
    }
    for (int i = 0; i < 500; ++i) {
      const auto src = static_cast<NodeId>(rng.next_below(16));
      auto dst = static_cast<NodeId>(rng.next_below(16));
      if (dst == src) dst = static_cast<NodeId>((dst + 1) % 16);
      mesh.send(src, dst, VNet::kRequest, rng.next_bool(0.5) ? 64 : 0,
                std::make_shared<TestPayload>(i));
    }
    kernel.run_until([&] { return delivered == 500 && mesh.idle(); },
                     200000);
    return std::pair<Cycle, std::uint64_t>{kernel.now(),
                                           mesh.router_traversals()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace puno::noc
