// Property sweep over all 8 STAMP-like profiles: structural invariants that
// every generated transaction must satisfy, regardless of seed.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "workloads/stamp.hpp"

namespace puno::workloads {
namespace {

using Param = std::tuple<std::string, std::uint64_t>;  // (benchmark, seed)

class StampProperty : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] static SyntheticSpec spec() {
    return stamp::make_spec(std::get<0>(GetParam()), 0.25);
  }
  [[nodiscard]] static std::unique_ptr<SyntheticWorkload> workload() {
    return stamp::make(std::get<0>(GetParam()), 16, std::get<1>(GetParam()),
                       0.25);
  }
};

TEST_P(StampProperty, EveryNodeMeetsItsQuota) {
  auto w = workload();
  const auto quota = spec().txns_per_node;
  for (NodeId n = 0; n < 16; ++n) {
    std::uint32_t count = 0;
    while (w->next(n).has_value()) ++count;
    ASSERT_EQ(count, quota) << "node " << n;
  }
}

TEST_P(StampProperty, OpCountsWithinSiteBounds) {
  auto w = workload();
  const auto s = spec();
  for (NodeId n = 0; n < 16; ++n) {
    while (auto d = w->next(n)) {
      ASSERT_LT(d->static_id, s.txns.size());
      const StaticTxnSpec& site = s.txns[d->static_id];
      std::uint32_t reads = 0, writes = 0;
      for (const auto& op : d->ops) (op.is_store ? writes : reads)++;
      EXPECT_GE(reads, site.reads_min + site.anchor_reads);
      EXPECT_LE(reads, site.reads_max + site.anchor_reads);
      EXPECT_GE(writes, site.writes_min + site.anchor_writes);
      EXPECT_LE(writes, site.writes_max + site.anchor_writes);
    }
  }
}

TEST_P(StampProperty, ThinkTimesWithinBounds) {
  auto w = workload();
  const auto s = spec();
  for (NodeId n = 0; n < 16; ++n) {
    while (auto d = w->next(n)) {
      EXPECT_GE(d->pre_think, s.pre_think_min);
      EXPECT_LE(d->pre_think, s.pre_think_max);
      EXPECT_GE(d->post_think, s.post_think_min);
      EXPECT_LE(d->post_think, s.post_think_max);
    }
  }
}

TEST_P(StampProperty, AddressesStayInsideLayout) {
  auto w = workload();
  const auto s = spec();
  const std::uint64_t max_block =
      s.hot_blocks + s.shared_blocks +
      16ull * s.private_blocks_per_node;
  for (NodeId n = 0; n < 16; ++n) {
    while (auto d = w->next(n)) {
      for (const auto& op : d->ops) {
        EXPECT_EQ(op.addr % s.block_bytes, 0u);
        EXPECT_LT(op.addr / s.block_bytes, max_block);
      }
    }
  }
}

TEST_P(StampProperty, FootprintFitsTheSharedL2) {
  // 8 MB L2 = 131072 blocks; every profile must fit with generous slack so
  // capacity misses never dominate the contention study.
  auto w = workload();
  std::set<Addr> blocks;
  for (NodeId n = 0; n < 16; ++n) {
    while (auto d = w->next(n)) {
      for (const auto& op : d->ops) blocks.insert(op.addr / 64);
    }
  }
  EXPECT_LT(blocks.size(), 131072u / 4);
}

TEST_P(StampProperty, WriteSetsFitTheL1WithoutOverflow) {
  // The bounded-HTM overflow abort is an escape hatch, not a steady state:
  // no transaction's footprint may exceed half the L1 (128 sets x 4 ways).
  auto w = workload();
  for (NodeId n = 0; n < 16; ++n) {
    while (auto d = w->next(n)) {
      std::set<Addr> blocks;
      for (const auto& op : d->ops) blocks.insert(op.addr / 64);
      EXPECT_LE(blocks.size(), 256u);
    }
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  return std::get<0>(info.param) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, StampProperty,
    ::testing::Combine(
        ::testing::Values("bayes", "intruder", "labyrinth", "yada", "genome",
                          "kmeans", "ssca2", "vacation"),
        ::testing::Values(std::uint64_t{1}, std::uint64_t{42})),
    param_name);

}  // namespace
}  // namespace puno::workloads
