#include "workloads/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/stamp.hpp"
#include "workloads/trace.hpp"

namespace puno::workloads {
namespace {

constexpr const char* kTrace = R"(trace-v1 t
txn 0 0 pre=10 post=10
r 0 pc=1 think=2
r 64 pc=2 think=2
w 0 pc=3 think=2
end
txn 1 1 pre=0 post=0
r 0 pc=4 think=0
end
)";

TraceWorkload tiny() {
  std::istringstream in(kTrace);
  return TraceWorkload::parse(in);
}

TEST(WorkloadAnalysis, CountsTxnsSitesAndOps) {
  auto w = tiny();
  const WorkloadProfile p = analyze(w, 2);
  EXPECT_EQ(p.name, "t");
  EXPECT_EQ(p.total_txns, 2u);
  EXPECT_EQ(p.static_txns, 2u);
  EXPECT_DOUBLE_EQ(p.avg_ops_per_txn, 2.0);
  EXPECT_DOUBLE_EQ(p.avg_reads_per_txn, 1.5);
  EXPECT_DOUBLE_EQ(p.avg_writes_per_txn, 0.5);
  EXPECT_DOUBLE_EQ(p.max_ops_in_txn, 3.0);
}

TEST(WorkloadAnalysis, FootprintAndConcentration) {
  auto w = tiny();
  const WorkloadProfile p = analyze(w, 2);
  EXPECT_EQ(p.footprint_blocks, 2u);  // blocks 0 and 64
  // Block 0 gets 3 of 4 accesses.
  EXPECT_DOUBLE_EQ(p.hottest_block_share, 0.75);
  EXPECT_DOUBLE_EQ(p.top16_access_share, 1.0);
}

TEST(WorkloadAnalysis, SharingMetrics) {
  auto w = tiny();
  const WorkloadProfile p = analyze(w, 2);
  // Block 0 touched by both nodes (degree 2), block 64 by one (degree 1).
  EXPECT_DOUBLE_EQ(p.avg_sharing_degree, 1.5);
  // Block 0 is written by node 0 and read by node 1: write-shared; block 64
  // is private.
  EXPECT_DOUBLE_EQ(p.write_shared_fraction, 0.5);
}

TEST(WorkloadAnalysis, ThinkAccounting) {
  auto w = tiny();
  const WorkloadProfile p = analyze(w, 2);
  // txn0: 10+10 + (2+2+2) = 26; txn1: 0. Mean 13.
  EXPECT_DOUBLE_EQ(p.avg_think_per_txn, 13.0);
}

TEST(WorkloadAnalysis, EmptyWorkloadYieldsZeros) {
  std::istringstream in("trace-v1 empty\n");
  TraceWorkload w = TraceWorkload::parse(in);
  const WorkloadProfile p = analyze(w, 4);
  EXPECT_EQ(p.total_txns, 0u);
  EXPECT_EQ(p.footprint_blocks, 0u);
  EXPECT_DOUBLE_EQ(p.avg_ops_per_txn, 0.0);
}

TEST(WorkloadAnalysis, PerNodeCapRespected) {
  auto w = stamp::make("kmeans", 4, 1, 1.0);
  const WorkloadProfile p = analyze(*w, 4, /*max_per_node=*/5);
  EXPECT_EQ(p.total_txns, 20u);
}

TEST(WorkloadAnalysis, HighContentionProfilesShareMoreWrites) {
  auto hot = stamp::make("intruder", 16, 1, 0.3);
  auto cold = stamp::make("ssca2", 16, 1, 0.3);
  const WorkloadProfile ph = analyze(*hot, 16);
  const WorkloadProfile pc = analyze(*cold, 16);
  EXPECT_GT(ph.top16_access_share, pc.top16_access_share)
      << "intruder concentrates on queue blocks; ssca2 scatters";
  EXPECT_GT(ph.avg_sharing_degree, pc.avg_sharing_degree);
}

TEST(WorkloadAnalysis, StaticTxnCountsMatchSpecs) {
  for (const auto& name : stamp::benchmark_names()) {
    auto w = stamp::make(name, 16, 1, 0.5);
    const auto spec_sites = stamp::make_spec(name).txns.size();
    const WorkloadProfile p = analyze(*w, 16);
    EXPECT_LE(p.static_txns, spec_sites) << name;
    EXPECT_GE(p.static_txns, 1u) << name;
  }
}

TEST(WorkloadAnalysis, SummaryMentionsKeyNumbers) {
  auto w = tiny();
  const WorkloadProfile p = analyze(w, 2);
  const std::string s = summarize(p);
  EXPECT_NE(s.find("t:"), std::string::npos);
  EXPECT_NE(s.find("2 txns"), std::string::npos);
  EXPECT_NE(s.find("2 sites"), std::string::npos);
}

}  // namespace
}  // namespace puno::workloads
