#include "workloads/stamp.hpp"

#include <gtest/gtest.h>

#include "sim/config.hpp"

namespace puno::workloads::stamp {
namespace {

TEST(Stamp, AllEightBenchmarksExist) {
  EXPECT_EQ(benchmark_names().size(), 8u);
  for (const auto& name : benchmark_names()) {
    EXPECT_NO_THROW({
      auto spec = make_spec(name);
      EXPECT_EQ(spec.name, name);
      EXPECT_FALSE(spec.txns.empty());
      EXPECT_GT(spec.txns_per_node, 0u);
    });
  }
}

TEST(Stamp, UnknownBenchmarkThrows) {
  EXPECT_THROW(make_spec("quicksort"), std::invalid_argument);
  EXPECT_THROW(input_parameters("quicksort"), std::invalid_argument);
  EXPECT_THROW(paper_abort_rate("quicksort"), std::invalid_argument);
}

TEST(Stamp, HighContentionSubsetMatchesPaper) {
  // Section IV: bayes, intruder, labyrinth, yada are the high-contention set
  EXPECT_TRUE(is_high_contention("bayes"));
  EXPECT_TRUE(is_high_contention("intruder"));
  EXPECT_TRUE(is_high_contention("labyrinth"));
  EXPECT_TRUE(is_high_contention("yada"));
  EXPECT_FALSE(is_high_contention("genome"));
  EXPECT_FALSE(is_high_contention("kmeans"));
  EXPECT_FALSE(is_high_contention("ssca2"));
  EXPECT_FALSE(is_high_contention("vacation"));
}

TEST(Stamp, PaperAbortRatesAreTableI) {
  EXPECT_DOUBLE_EQ(paper_abort_rate("bayes"), 0.971);
  EXPECT_DOUBLE_EQ(paper_abort_rate("labyrinth"), 0.986);
  EXPECT_DOUBLE_EQ(paper_abort_rate("ssca2"), 0.003);
}

TEST(Stamp, InputParametersMatchTableI) {
  EXPECT_EQ(input_parameters("labyrinth"), "32*32*3 maze, 96 paths");
  EXPECT_EQ(input_parameters("yada"), "1264 elements, min-angle 20");
}

TEST(Stamp, ScaleMultipliesQuota) {
  const auto base = make_spec("vacation", 1.0);
  const auto doubled = make_spec("vacation", 2.0);
  EXPECT_EQ(doubled.txns_per_node, base.txns_per_node * 2);
  const auto tiny = make_spec("vacation", 0.0001);
  EXPECT_EQ(tiny.txns_per_node, 1u) << "scale never rounds to zero";
}

TEST(Stamp, BayesHasLargestStaticTxnCount) {
  // Section III.D: bayes has the most static transactions in STAMP (15).
  const auto bayes = make_spec("bayes");
  EXPECT_EQ(bayes.txns.size(), 15u);
  for (const auto& name : benchmark_names()) {
    EXPECT_LE(make_spec(name).txns.size(), bayes.txns.size());
  }
}

TEST(Stamp, StaticTxnCountsFitTheTxLB) {
  SystemConfig cfg;
  for (const auto& name : benchmark_names()) {
    EXPECT_LE(make_spec(name).txns.size(), cfg.puno.txlb_entries);
  }
}

TEST(Stamp, HighContentionProfilesAreHotter) {
  // Structural sanity: the high-contention kernels concentrate far more of
  // their writes on the hot region than the low-contention ones.
  auto hotness = [](const SyntheticSpec& s) {
    double acc = 0;
    for (const auto& t : s.txns) acc += t.hot_write_frac * t.weight;
    return acc;
  };
  EXPECT_GT(hotness(make_spec("bayes")), hotness(make_spec("genome")));
  EXPECT_GT(hotness(make_spec("labyrinth")), hotness(make_spec("ssca2")));
}

TEST(Stamp, MakeBuildsWorkload) {
  auto w = make("kmeans", 16, 42);
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->name(), "kmeans");
  EXPECT_TRUE(w->next(0).has_value());
}

TEST(Stamp, KmeansIsRmwHeavy) {
  const auto spec = make_spec("kmeans");
  EXPECT_GE(spec.txns[0].rmw_frac, 0.9);
}

TEST(Stamp, LabyrinthScansTheGrid) {
  const auto spec = make_spec("labyrinth");
  bool scans = false;
  for (const auto& t : spec.txns) scans |= t.scan_hot;
  EXPECT_TRUE(scans);
}

}  // namespace
}  // namespace puno::workloads::stamp
