#include "workloads/synthetic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace puno::workloads {
namespace {

SyntheticSpec tiny_spec() {
  SyntheticSpec s;
  s.name = "tiny";
  s.txns_per_node = 10;
  s.hot_blocks = 4;
  s.anchor_blocks = 1;
  s.shared_blocks = 64;
  s.private_blocks_per_node = 16;
  StaticTxnSpec t;
  t.reads_min = 2;
  t.reads_max = 4;
  t.writes_min = 1;
  t.writes_max = 2;
  t.hot_read_frac = 0.5;
  t.hot_write_frac = 0.5;
  s.txns.push_back(t);
  return s;
}

TEST(SyntheticWorkload, HonoursPerNodeQuota) {
  SyntheticWorkload w(tiny_spec(), 4, 1);
  for (NodeId n = 0; n < 4; ++n) {
    int count = 0;
    while (w.next(n).has_value()) ++count;
    EXPECT_EQ(count, 10);
  }
}

TEST(SyntheticWorkload, NodesAreIndependentStreams) {
  SyntheticWorkload w(tiny_spec(), 2, 1);
  auto a = w.next(0);
  auto b = w.next(1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  // Two nodes shouldn't generate identical transactions.
  const bool same = a->ops.size() == b->ops.size() &&
                    a->pre_think == b->pre_think &&
                    (a->ops.empty() || a->ops[0].addr == b->ops[0].addr);
  EXPECT_FALSE(same);
}

TEST(SyntheticWorkload, DeterministicForSameSeed) {
  SyntheticWorkload w1(tiny_spec(), 2, 7);
  SyntheticWorkload w2(tiny_spec(), 2, 7);
  for (int i = 0; i < 10; ++i) {
    auto a = w1.next(0);
    auto b = w2.next(0);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a) break;
    ASSERT_EQ(a->ops.size(), b->ops.size());
    for (std::size_t k = 0; k < a->ops.size(); ++k) {
      EXPECT_EQ(a->ops[k].addr, b->ops[k].addr);
      EXPECT_EQ(a->ops[k].is_store, b->ops[k].is_store);
    }
  }
}

TEST(SyntheticWorkload, OpCountsWithinSpecBounds) {
  SyntheticWorkload w(tiny_spec(), 1, 3);
  while (auto d = w.next(0)) {
    std::uint32_t reads = 0, writes = 0;
    for (const auto& op : d->ops) (op.is_store ? writes : reads)++;
    EXPECT_GE(reads, 2u);
    EXPECT_LE(reads, 4u);
    EXPECT_GE(writes, 1u);
    EXPECT_LE(writes, 2u);
  }
}

TEST(SyntheticWorkload, AddressesAreBlockAligned) {
  SyntheticWorkload w(tiny_spec(), 1, 3);
  while (auto d = w.next(0)) {
    for (const auto& op : d->ops) EXPECT_EQ(op.addr % 64, 0u);
  }
}

TEST(SyntheticWorkload, PrivateAddressesDisjointAcrossNodes) {
  auto spec = tiny_spec();
  spec.private_frac = 1.0;  // all cold accesses go private
  spec.txns[0].hot_read_frac = 0.0;
  spec.txns[0].hot_write_frac = 0.0;
  SyntheticWorkload w(spec, 4, 1);
  std::map<NodeId, std::set<Addr>> per_node;
  for (NodeId n = 0; n < 4; ++n) {
    while (auto d = w.next(n)) {
      for (const auto& op : d->ops) per_node[n].insert(op.addr);
    }
  }
  for (NodeId a = 0; a < 4; ++a) {
    for (NodeId b = a + 1; b < 4; ++b) {
      for (Addr addr : per_node[a]) {
        EXPECT_FALSE(per_node[b].contains(addr))
            << "private block shared between nodes " << a << " and " << b;
      }
    }
  }
}

TEST(SyntheticWorkload, AnchorOpsTouchAnchorBlocks) {
  auto spec = tiny_spec();
  spec.txns[0].anchor_reads = 1;
  spec.txns[0].anchor_writes = 1;
  spec.anchor_blocks = 2;
  SyntheticWorkload w(spec, 1, 1);
  while (auto d = w.next(0)) {
    // First two ops are the anchor read + write, within the anchor region.
    ASSERT_GE(d->ops.size(), 2u);
    EXPECT_FALSE(d->ops[0].is_store);
    EXPECT_TRUE(d->ops[1].is_store);
    EXPECT_LT(d->ops[0].addr / 64, 2u);
    EXPECT_EQ(d->ops[0].addr, d->ops[1].addr);
  }
}

TEST(SyntheticWorkload, ScanHotSweepsWholeRegion) {
  auto spec = tiny_spec();
  spec.hot_blocks = 8;
  spec.txns[0].scan_hot = true;
  spec.txns[0].reads_min = 8;
  spec.txns[0].reads_max = 8;
  spec.txns[0].writes_min = 0;
  spec.txns[0].writes_max = 0;
  SyntheticWorkload w(spec, 1, 1);
  auto d = w.next(0);
  ASSERT_TRUE(d.has_value());
  std::set<Addr> read;
  for (const auto& op : d->ops) read.insert(op.addr);
  EXPECT_EQ(read.size(), 8u) << "scan covers every hot block exactly once";
}

TEST(SyntheticWorkload, RmwWritesReuseReadAddresses) {
  auto spec = tiny_spec();
  spec.txns[0].rmw_frac = 1.0;
  SyntheticWorkload w(spec, 1, 1);
  while (auto d = w.next(0)) {
    std::set<Addr> reads;
    for (const auto& op : d->ops) {
      if (!op.is_store) reads.insert(op.addr);
    }
    for (const auto& op : d->ops) {
      if (op.is_store) EXPECT_TRUE(reads.contains(op.addr));
    }
  }
}

TEST(SyntheticWorkload, PcStablePerSiteAndPosition) {
  SyntheticWorkload w1(tiny_spec(), 1, 1);
  SyntheticWorkload w2(tiny_spec(), 1, 99);  // different seed
  auto a = w1.next(0);
  auto b = w2.next(0);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->ops[0].pc, b->ops[0].pc)
      << "the PC identifies the static instruction, not the dynamic one";
}

TEST(SyntheticWorkload, SiteWeightsRoughlyRespected) {
  SyntheticSpec s = tiny_spec();
  s.txns_per_node = 2000;
  StaticTxnSpec rare = s.txns[0];
  rare.weight = 0.1;  // ~9% of instances
  s.txns.push_back(rare);
  SyntheticWorkload w(s, 1, 5);
  int site1 = 0, total = 0;
  while (auto d = w.next(0)) {
    ++total;
    if (d->static_id == 1) ++site1;
  }
  const double frac = static_cast<double>(site1) / total;
  EXPECT_NEAR(frac, 0.1 / 1.1, 0.03);
}

}  // namespace
}  // namespace puno::workloads
