#include "workloads/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/stamp.hpp"

namespace puno::workloads {
namespace {

constexpr const char* kTinyTrace = R"(# a minimal two-node trace
trace-v1 mini
txn 0 3 pre=10 post=20
r 64 pc=100 think=2
w 64 pc=101 think=3
end
txn 1 0 pre=0 post=0
r 128 pc=7 think=1
end
txn 0 3 pre=5 post=5
end
)";

TEST(TraceWorkload, ParsesMinimalTrace) {
  std::istringstream in(kTinyTrace);
  TraceWorkload w = TraceWorkload::parse(in);
  EXPECT_EQ(w.name(), "mini");
  EXPECT_EQ(w.total_txns(), 3u);
  EXPECT_EQ(w.txns_for(0), 2u);
  EXPECT_EQ(w.txns_for(1), 1u);

  auto d = w.next(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->static_id, 3u);
  EXPECT_EQ(d->pre_think, 10u);
  EXPECT_EQ(d->post_think, 20u);
  ASSERT_EQ(d->ops.size(), 2u);
  EXPECT_FALSE(d->ops[0].is_store);
  EXPECT_EQ(d->ops[0].addr, 64u);
  EXPECT_EQ(d->ops[0].pc, 100u);
  EXPECT_EQ(d->ops[0].pre_think, 2u);
  EXPECT_TRUE(d->ops[1].is_store);
}

TEST(TraceWorkload, StreamsExhaustIndependently) {
  std::istringstream in(kTinyTrace);
  TraceWorkload w = TraceWorkload::parse(in);
  EXPECT_TRUE(w.next(1).has_value());
  EXPECT_FALSE(w.next(1).has_value());
  EXPECT_TRUE(w.next(0).has_value());
  EXPECT_TRUE(w.next(0).has_value());
  EXPECT_FALSE(w.next(0).has_value());
  EXPECT_FALSE(w.next(5).has_value()) << "unknown node has no stream";
}

TEST(TraceWorkload, EmptyTransactionAllowed) {
  std::istringstream in(kTinyTrace);
  TraceWorkload w = TraceWorkload::parse(in);
  (void)w.next(0);
  auto d = w.next(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->ops.empty());
}

TEST(TraceWorkload, RejectsMalformedInput) {
  const auto expect_throw = [](const char* text) {
    std::istringstream in(text);
    EXPECT_THROW(TraceWorkload::parse(in), std::runtime_error) << text;
  };
  expect_throw("");                                   // empty
  expect_throw("txn 0 0 pre=0 post=0\nend\n");        // missing header
  expect_throw("trace-v1 x\nr 64 pc=1 think=1\n");    // op outside txn
  expect_throw("trace-v1 x\ntxn 0 0 pre=0 post=0\n"); // unterminated
  expect_throw("trace-v1 x\ntxn 0 0 pre=0 post=0\ntxn 0 1 pre=0 post=0\n");
  expect_throw("trace-v1 x\ntxn 0 0 zzz=0 post=0\nend\n");  // bad kv
  expect_throw("trace-v1 x\nfrobnicate\n");           // unknown directive
}

TEST(TraceWorkload, RoundTripIsIdentical) {
  std::istringstream in(kTinyTrace);
  TraceWorkload w = TraceWorkload::parse(in);
  std::ostringstream out;
  w.write(out);
  std::istringstream in2(out.str());
  TraceWorkload w2 = TraceWorkload::parse(in2);
  std::ostringstream out2;
  w2.write(out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(TraceWorkload, RecordsSyntheticWorkloadFaithfully) {
  auto source = stamp::make("kmeans", 4, 11, 0.05);
  std::ostringstream rec;
  TraceWorkload::record(*source, 4, rec);

  // Replaying the trace yields exactly the same descriptor sequence as a
  // fresh generator with the same seed.
  std::istringstream in(rec.str());
  TraceWorkload replay = TraceWorkload::parse(in);
  auto fresh = stamp::make("kmeans", 4, 11, 0.05);
  for (NodeId n = 0; n < 4; ++n) {
    while (true) {
      auto a = fresh->next(n);
      auto b = replay.next(n);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (!a) break;
      ASSERT_EQ(a->static_id, b->static_id);
      ASSERT_EQ(a->pre_think, b->pre_think);
      ASSERT_EQ(a->post_think, b->post_think);
      ASSERT_EQ(a->ops.size(), b->ops.size());
      for (std::size_t i = 0; i < a->ops.size(); ++i) {
        EXPECT_EQ(a->ops[i].addr, b->ops[i].addr);
        EXPECT_EQ(a->ops[i].is_store, b->ops[i].is_store);
        EXPECT_EQ(a->ops[i].pc, b->ops[i].pc);
        EXPECT_EQ(a->ops[i].pre_think, b->ops[i].pre_think);
      }
    }
  }
}

TEST(TraceWorkload, RecordHonoursPerNodeCap) {
  auto source = stamp::make("kmeans", 2, 1, 1.0);
  std::ostringstream rec;
  TraceWorkload::record(*source, 2, rec, /*max_per_node=*/3);
  std::istringstream in(rec.str());
  TraceWorkload w = TraceWorkload::parse(in);
  EXPECT_EQ(w.txns_for(0), 3u);
  EXPECT_EQ(w.txns_for(1), 3u);
}

TEST(TraceWorkload, ParseErrorsNameTheLineAndOffendingToken) {
  const auto message_of = [](const char* text) -> std::string {
    std::istringstream in(text);
    try {
      (void)TraceWorkload::parse(in);
    } catch (const std::runtime_error& e) {
      return e.what();
    }
    return "";
  };

  // Non-numeric operand: the token itself must appear in the message.
  std::string msg =
      message_of("trace-v1 x\ntxn 0 1 pre=0 post=0\nr banana pc=1 think=0\nend\n");
  EXPECT_NE(msg.find("banana"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;

  // Wrong key in a key=value pair.
  msg = message_of("trace-v1 x\ntxn 0 1 zzz=0 post=0\nend\n");
  EXPECT_NE(msg.find("zzz=0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;

  // Unknown directive.
  msg = message_of("trace-v1 x\nfrobnicate 1 2\n");
  EXPECT_NE(msg.find("frobnicate"), std::string::npos) << msg;

  // Value with trailing garbage.
  msg = message_of("trace-v1 x\ntxn 0 1 pre=3x post=0\nend\n");
  EXPECT_NE(msg.find("pre=3x"), std::string::npos) << msg;
}

TEST(TraceWorkload, RecordZeroCapDrainsTheSourceCompletely) {
  // max_per_node = 0 means unlimited: every descriptor the source yields is
  // written, so the replay matches an uncapped fresh generator node-for-node.
  auto source = stamp::make("kmeans", 2, 3, 0.05);
  std::ostringstream rec;
  TraceWorkload::record(*source, 2, rec, /*max_per_node=*/0);

  auto fresh = stamp::make("kmeans", 2, 3, 0.05);
  std::size_t expect0 = 0, expect1 = 0;
  while (fresh->next(0).has_value()) ++expect0;
  while (fresh->next(1).has_value()) ++expect1;
  ASSERT_GT(expect0, 0u);

  std::istringstream in(rec.str());
  TraceWorkload w = TraceWorkload::parse(in);
  EXPECT_EQ(w.txns_for(0), expect0);
  EXPECT_EQ(w.txns_for(1), expect1);
}

TEST(TraceWorkload, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "trace-v1 c\n\n# full comment line\ntxn 0 1 pre=1 post=1 # trailing\n"
      "r 64 pc=1 think=1\nend\n");
  TraceWorkload w = TraceWorkload::parse(in);
  EXPECT_EQ(w.total_txns(), 1u);
}

}  // namespace
}  // namespace puno::workloads
