#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace puno::sim {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, MeanMinMax) {
  Scalar s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  s.sample(2.0);
  s.sample(4.0);
  s.sample(9.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(Scalar, SingleSampleIsMinAndMax) {
  Scalar s;
  s.sample(-3.5);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
  EXPECT_DOUBLE_EQ(s.mean(), -3.5);
}

TEST(Scalar, ResetClears) {
  Scalar s;
  s.sample(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Histogram, BucketsAndFractions) {
  Histogram h(8);
  h.sample(1);
  h.sample(1);
  h.sample(3);
  h.sample(20);  // overflow bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(8), 1u) << "values beyond the cap land in the last bucket";
  EXPECT_DOUBLE_EQ(h.fraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.fraction(0), 0.0);
}

TEST(Histogram, MeanUsesRawValues) {
  Histogram h(4);
  h.sample(2);
  h.sample(4);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

TEST(Histogram, OutOfRangeBucketQueryIsZero) {
  Histogram h(4);
  EXPECT_EQ(h.bucket(100), 0u);
}

TEST(Histogram, ResetClears) {
  Histogram h(4);
  h.sample(2);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.bucket(2), 0u);
}

TEST(Histogram, PercentileEmptyIsZero) {
  Histogram h(8);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(Histogram, PercentileCeilRank) {
  Histogram h(16);
  // 1,2,3,...,10: p50 -> rank ceil(0.5*10)=5 -> value 5; p90 -> 9; p100 -> 10.
  for (std::uint64_t v = 1; v <= 10; ++v) h.sample(v);
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(0.9), 9u);
  EXPECT_EQ(h.percentile(1.0), 10u);
}

TEST(Histogram, PercentileZeroIsMinimum) {
  Histogram h(16);
  h.sample(3);
  h.sample(7);
  EXPECT_EQ(h.percentile(0.0), 3u) << "rank is floored at 1";
}

TEST(Histogram, PercentileClampsP) {
  Histogram h(8);
  h.sample(4);
  EXPECT_EQ(h.percentile(-2.0), 4u);
  EXPECT_EQ(h.percentile(7.5), 4u);
}

TEST(Histogram, PercentileSingleValue) {
  Histogram h(8);
  for (int i = 0; i < 100; ++i) h.sample(6);
  EXPECT_EQ(h.percentile(0.01), 6u);
  EXPECT_EQ(h.percentile(0.5), 6u);
  EXPECT_EQ(h.percentile(0.99), 6u);
}

TEST(Histogram, PercentileTailReportsOverflowBucket) {
  Histogram h(4);  // buckets 0..4, cap at 4
  h.sample(1);
  h.sample(100);  // lands in the overflow bucket
  EXPECT_EQ(h.percentile(1.0), 4u) << "tail reads as 'cap or more'";
}

TEST(Histogram, PercentileSkewedDistribution) {
  Histogram h(32);
  for (int i = 0; i < 90; ++i) h.sample(1);
  for (int i = 0; i < 9; ++i) h.sample(10);
  h.sample(30);
  EXPECT_EQ(h.percentile(0.5), 1u);
  EXPECT_EQ(h.percentile(0.9), 1u) << "rank 90 is still inside the spike";
  EXPECT_EQ(h.percentile(0.95), 10u);
  EXPECT_EQ(h.percentile(0.99), 10u);
  EXPECT_EQ(h.percentile(1.0), 30u);
}

TEST(StatsRegistry, ReturnsSameObjectForSameName) {
  StatsRegistry reg;
  Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

TEST(StatsRegistry, SeparateNamesSeparateStats) {
  StatsRegistry reg;
  reg.counter("a").add(1);
  reg.counter("b").add(2);
  EXPECT_EQ(reg.counter("a").value(), 1u);
  EXPECT_EQ(reg.counter("b").value(), 2u);
}

TEST(StatsRegistry, HistogramKeepsFirstCapacity) {
  StatsRegistry reg;
  Histogram& h = reg.histogram("h", 4);
  EXPECT_EQ(&h, &reg.histogram("h", 99));
  EXPECT_EQ(reg.histogram("h").num_buckets(), 5u);
}

TEST(StatsRegistry, ResetAll) {
  StatsRegistry reg;
  reg.counter("c").add(5);
  reg.scalar("s").sample(1.0);
  reg.histogram("h").sample(2);
  reg.reset();
  EXPECT_EQ(reg.counter("c").value(), 0u);
  EXPECT_EQ(reg.scalar("s").count(), 0u);
  EXPECT_EQ(reg.histogram("h").total(), 0u);
}

}  // namespace
}  // namespace puno::sim
