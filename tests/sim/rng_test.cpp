#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace puno::sim {
namespace {

TEST(Rng, DeterministicForSameSeedAndStream) {
  Rng a(42, 7);
  Rng b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentStreamsDecorrelated) {
  Rng a(42, 0);
  Rng b(42, 1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1, 0);
  Rng b(2, 0);
  EXPECT_NE(a(), b());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9, 3);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(5, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(11, 0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_range(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u) << "all values in [3,7] should appear";
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(13, 0);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBoolMatchesProbabilityRoughly) {
  Rng rng(17, 0);
  int trues = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.next_bool(0.3)) ++trues;
  }
  const double frac = static_cast<double>(trues) / kTrials;
  EXPECT_NEAR(frac, 0.3, 0.02);
}

TEST(Rng, NextBoolZeroAndOne) {
  Rng rng(19, 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, UniformityChiSquaredSmoke) {
  // 16 buckets over next_below(16): chi^2 should not explode.
  Rng rng(23, 0);
  std::vector<int> buckets(16, 0);
  constexpr int kTrials = 16000;
  for (int i = 0; i < kTrials; ++i) ++buckets[rng.next_below(16)];
  const double expected = kTrials / 16.0;
  double chi2 = 0;
  for (int b : buckets) {
    chi2 += (b - expected) * (b - expected) / expected;
  }
  // 15 dof: > 50 would be catastrophically non-uniform.
  EXPECT_LT(chi2, 50.0);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t a = splitmix64(state);
  const std::uint64_t b = splitmix64(state);
  EXPECT_NE(a, b);
  std::uint64_t state2 = 0;
  EXPECT_EQ(a, splitmix64(state2));
}

}  // namespace
}  // namespace puno::sim
