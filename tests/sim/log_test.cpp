#include "sim/log.hpp"

#include <gtest/gtest.h>

namespace puno::sim {
namespace {

class TraceLogTest : public ::testing::Test {
 protected:
  TraceLogTest() { TraceLog::instance().disable_all(); }
  ~TraceLogTest() override { TraceLog::instance().disable_all(); }
};

TEST_F(TraceLogTest, DisabledByDefault) {
  auto& log = TraceLog::instance();
  EXPECT_FALSE(log.enabled(TraceCat::kNoc));
  EXPECT_FALSE(log.enabled(TraceCat::kHtm));
}

TEST_F(TraceLogTest, EnableIsPerCategory) {
  auto& log = TraceLog::instance();
  log.enable(TraceCat::kHtm);
  EXPECT_TRUE(log.enabled(TraceCat::kHtm));
  EXPECT_FALSE(log.enabled(TraceCat::kNoc));
}

TEST_F(TraceLogTest, SpecParsesCommaSeparatedList) {
  auto& log = TraceLog::instance();
  log.enable_from_spec("noc,htm");
  EXPECT_TRUE(log.enabled(TraceCat::kNoc));
  EXPECT_TRUE(log.enabled(TraceCat::kHtm));
  EXPECT_FALSE(log.enabled(TraceCat::kCoherence));
}

TEST_F(TraceLogTest, SpecAllEnablesEverything) {
  auto& log = TraceLog::instance();
  log.enable_from_spec("all");
  EXPECT_TRUE(log.enabled(TraceCat::kKernel));
  EXPECT_TRUE(log.enabled(TraceCat::kNoc));
  EXPECT_TRUE(log.enabled(TraceCat::kCoherence));
  EXPECT_TRUE(log.enabled(TraceCat::kHtm));
  EXPECT_TRUE(log.enabled(TraceCat::kPuno));
  EXPECT_TRUE(log.enabled(TraceCat::kWorkload));
}

TEST_F(TraceLogTest, UnknownTokensIgnored) {
  auto& log = TraceLog::instance();
  log.enable_from_spec("bogus,puno,alsobogus");
  EXPECT_TRUE(log.enabled(TraceCat::kPuno));
  EXPECT_FALSE(log.enabled(TraceCat::kNoc));
}

TEST_F(TraceLogTest, EmptySpecEnablesNothing) {
  auto& log = TraceLog::instance();
  log.enable_from_spec("");
  EXPECT_FALSE(log.enabled(TraceCat::kNoc));
}

}  // namespace
}  // namespace puno::sim
