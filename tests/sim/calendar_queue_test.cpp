// Calendar-queue scheduler tests: same-cycle FIFO, the far-future heap
// (delay >= Kernel::kWindow), window-boundary crossings, and the
// hook-scheduled zero-delay remap. These pin down the orderings the
// calendar queue must reproduce bit-identically from the old single-heap
// kernel; the pre-existing kernel_test.cpp zero-delay regressions from PR 1
// cover the in-event rescheduling cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/kernel.hpp"

namespace puno::sim {
namespace {

TEST(CalendarQueueTest, SameCycleEventsRunInSchedulingOrder) {
  Kernel k;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    k.schedule(3, [&order, i] { order.push_back(i); });
  }
  k.run_for(4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(CalendarQueueTest, FarFutureEventsUseHeapAndStillFire) {
  Kernel k;
  std::vector<int> order;
  // All three are >= kWindow, so all take the far-future heap path;
  // scheduled out of due order to exercise the heap property.
  k.schedule(Kernel::kWindow + 100, [&order] { order.push_back(2); });
  k.schedule(Kernel::kWindow, [&order] { order.push_back(0); });
  k.schedule(Kernel::kWindow + 10, [&order] { order.push_back(1); });
  EXPECT_EQ(k.pending_events(), 3u);
  k.run_for(Kernel::kWindow + 101);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(k.pending_events(), 0u);
}

TEST(CalendarQueueTest, MaturedFarEventsInterleaveWithBucketBySeq) {
  Kernel k;
  std::vector<int> order;
  // Due the same cycle, alternating far-heap and bucket scheduling. FIFO
  // among same-cycle events must hold across both structures: drain order
  // is scheduling order, not "bucket first, heap second".
  const Cycle due = Kernel::kWindow;
  k.schedule(due, [&order] { order.push_back(0); });      // far (delay == W)
  k.run_for(1);                                           // now = 1
  k.schedule(due - 1, [&order] { order.push_back(1); });  // bucket
  k.schedule(due + 5, [&order] { order.push_back(3); });  // far, later cycle
  k.schedule(due - 1, [&order] { order.push_back(2); });  // bucket
  k.run_for(due + 10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(CalendarQueueTest, BoundaryDelaysAroundTheWindow) {
  Kernel k;
  std::vector<Cycle> fired_at;
  for (const Cycle d : {Kernel::kWindow - 1, Kernel::kWindow,
                        Kernel::kWindow + 1}) {
    k.schedule(d, [&k, &fired_at] { fired_at.push_back(k.now()); });
  }
  k.run_for(Kernel::kWindow + 2);
  EXPECT_EQ(fired_at, (std::vector<Cycle>{Kernel::kWindow - 1, Kernel::kWindow,
                                          Kernel::kWindow + 1}));
}

TEST(CalendarQueueTest, RingReusesBucketsAcrossLaps) {
  Kernel k;
  // Delay 7 from the same phase of each lap lands in the same bucket index
  // every kWindow cycles; each lap must only see its own events.
  std::vector<Cycle> fired_at;
  for (int lap = 0; lap < 5; ++lap) {
    k.schedule(7, [&k, &fired_at] { fired_at.push_back(k.now()); });
    k.schedule(7, [&k, &fired_at] { fired_at.push_back(k.now()); });
    k.run_for(Kernel::kWindow);
  }
  ASSERT_EQ(fired_at.size(), 10u);
  for (int lap = 0; lap < 5; ++lap) {
    const Cycle want = static_cast<Cycle>(lap) * Kernel::kWindow + 7;
    EXPECT_EQ(fired_at[2 * lap], want);
    EXPECT_EQ(fired_at[2 * lap + 1], want);
  }
  EXPECT_EQ(k.pending_events(), 0u);
}

TEST(CalendarQueueTest, EventScheduledFromEventSameCycleRunsSameCycle) {
  Kernel k;
  std::vector<int> order;
  k.schedule(2, [&k, &order] {
    order.push_back(0);
    k.schedule(0, [&order] { order.push_back(2); });
  });
  k.schedule(2, [&order] { order.push_back(1); });
  k.run_for(3);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(CalendarQueueTest, HookScheduledZeroDelayRunsNextCycleFirst) {
  Kernel k;
  std::vector<std::pair<int, Cycle>> log;
  bool armed = false;
  k.add_post_cycle_hook([&](Cycle now) {
    if (now == 0 && !armed) {
      armed = true;
      // Scheduled after this cycle's drain: must run next cycle, but ahead
      // of events genuinely scheduled for next cycle (it keeps when = now).
      k.schedule(0, [&k, &log] { log.emplace_back(0, k.now()); });
    }
  });
  k.schedule(1, [&k, &log] { log.emplace_back(1, k.now()); });
  k.run_for(2);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0], (std::pair<int, Cycle>{0, 1}));
  EXPECT_EQ(log[1], (std::pair<int, Cycle>{1, 1}));
}

TEST(CalendarQueueTest, PendingEventsTracksBucketsAndHeap) {
  Kernel k;
  k.schedule(1, [] {});
  k.schedule(Kernel::kWindow + 3, [] {});
  EXPECT_EQ(k.pending_events(), 2u);
  k.run_for(2);
  EXPECT_EQ(k.pending_events(), 1u);
  k.run_for(Kernel::kWindow + 2);
  EXPECT_EQ(k.pending_events(), 0u);
}

}  // namespace
}  // namespace puno::sim
