#include "sim/config.hpp"

#include <gtest/gtest.h>

namespace puno {
namespace {

TEST(SystemConfig, TableIIDefaults) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.num_nodes, 16u);
  EXPECT_EQ(cfg.cache.l1_size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.cache.l1_assoc, 4u);
  EXPECT_EQ(cfg.cache.l2_size_bytes, 8ull * 1024 * 1024);
  EXPECT_EQ(cfg.cache.l2_assoc, 8u);
  EXPECT_EQ(cfg.cache.l2_latency, 20u);
  EXPECT_EQ(cfg.cache.memory_latency, 200u);
  EXPECT_EQ(cfg.noc.mesh_width, 4u);
  EXPECT_EQ(cfg.noc.pipeline_stages, 4u);
  EXPECT_EQ(cfg.puno.pbuffer_entries, 16u);
  EXPECT_EQ(cfg.puno.txlb_entries, 32u);
  EXPECT_EQ(cfg.htm.fixed_backoff, 20u);
}

TEST(SystemConfig, BlockAlignment) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.block_of(0), 0u);
  EXPECT_EQ(cfg.block_of(63), 0u);
  EXPECT_EQ(cfg.block_of(64), 64u);
  EXPECT_EQ(cfg.block_of(130), 128u);
}

TEST(SystemConfig, HomeInterleavingCoversAllNodes) {
  SystemConfig cfg;
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    const BlockAddr b = static_cast<BlockAddr>(n) * cfg.cache.block_bytes;
    EXPECT_EQ(cfg.home_of(b), n);
  }
  // Wraps around.
  EXPECT_EQ(cfg.home_of(16ull * 64), 0u);
}

TEST(SystemConfig, HomeIsStable) {
  SystemConfig cfg;
  const BlockAddr b = 7 * 64;
  EXPECT_EQ(cfg.home_of(b), cfg.home_of(b));
}

TEST(SystemConfig, ValidateAcceptsDefaults) {
  EXPECT_EQ(validate(SystemConfig{}), std::nullopt);
}

TEST(SystemConfig, ValidateAcceptsScaleStudySizes) {
  for (const std::uint32_t w : {8u, 16u, 32u}) {
    SystemConfig cfg;
    cfg.num_nodes = w * w;
    cfg.noc.mesh_width = w;
    EXPECT_EQ(validate(cfg), std::nullopt) << w << "x" << w;
  }
}

TEST(SystemConfig, ValidateAcceptsNonSquareMesh) {
  SystemConfig cfg;
  cfg.num_nodes = 32;
  cfg.noc.mesh_width = 8;
  cfg.noc.mesh_height = 4;
  EXPECT_EQ(validate(cfg), std::nullopt);
  EXPECT_EQ(cfg.noc.rows(), 4u);
}

TEST(SystemConfig, ValidateRejectsMismatchedMesh) {
  SystemConfig cfg;
  cfg.num_nodes = 17;  // mesh stays 4x4
  ASSERT_TRUE(validate(cfg).has_value());

  SystemConfig big;
  big.num_nodes = kMaxNodes + 1;
  EXPECT_TRUE(validate(big).has_value());

  SystemConfig tiny;
  tiny.num_nodes = 1;
  tiny.noc.mesh_width = 1;
  EXPECT_TRUE(validate(tiny).has_value());
}

TEST(SystemConfig, ValidateRejectsBadDirectoryKnobs) {
  SystemConfig cfg;
  cfg.dir.shards = 3;  // does not divide 16
  EXPECT_TRUE(validate(cfg).has_value());

  SystemConfig banks;
  banks.cache.l2_banks = 5;
  EXPECT_TRUE(validate(banks).has_value());

  SystemConfig region;
  region.dir.coarse_region = 17;  // > num_nodes
  EXPECT_TRUE(validate(region).has_value());

  SystemConfig ptrs;
  ptrs.dir.limited_pointers = 17;  // hardware cap is 16
  EXPECT_TRUE(validate(ptrs).has_value());
}

TEST(SystemConfig, EffectiveKnobDefaultsScaleWithNodeCount) {
  SystemConfig cfg;
  cfg.num_nodes = 256;
  cfg.noc.mesh_width = 16;
  EXPECT_EQ(cfg.dir_shards(), 256u);
  EXPECT_EQ(cfg.effective_l2_banks(), 256u);
  // pbuffer_entries keeps its Table II default of 16 — that is what makes
  // P-Buffer pressure appear naturally at 64+ nodes.
  EXPECT_EQ(cfg.effective_pbuffer_entries(), 16u);
  cfg.puno.pbuffer_entries = 0;  // explicit "one per node" auto value
  EXPECT_EQ(cfg.effective_pbuffer_entries(), 256u);
}

TEST(SystemConfig, ShardedHomesSpaceEvenlyAndStayValid) {
  SystemConfig cfg;
  cfg.num_nodes = 64;
  cfg.noc.mesh_width = 8;
  cfg.dir.shards = 16;
  ASSERT_EQ(validate(cfg), std::nullopt);
  for (std::uint64_t line = 0; line < 200; ++line) {
    const NodeId h = cfg.home_of(line * cfg.cache.block_bytes);
    EXPECT_LT(h, cfg.num_nodes);
    EXPECT_EQ(h % 4, 0u);  // homes at stride num_nodes / shards = 4
  }
  // Default sharding (every node is home) is the seed-identical mapping.
  SystemConfig dflt;
  dflt.num_nodes = 64;
  dflt.noc.mesh_width = 8;
  for (std::uint64_t line = 0; line < 200; ++line) {
    EXPECT_EQ(dflt.home_of(line * dflt.cache.block_bytes),
              static_cast<NodeId>(line % 64));
  }
}

TEST(SharerRepNames, RoundTrip) {
  for (const SharerRep r :
       {SharerRep::kFull, SharerRep::kCoarse, SharerRep::kLimited}) {
    const auto back = sharer_rep_from_string(to_string(r));
    ASSERT_TRUE(back.has_value()) << to_string(r);
    EXPECT_EQ(*back, r);
  }
  EXPECT_EQ(sharer_rep_from_string("nonesuch"), std::nullopt);
}

TEST(NocConfig, TotalVcs) {
  NocConfig n;
  EXPECT_EQ(n.total_vcs(), n.num_vnets * n.vcs_per_vnet);
}

TEST(Scheme, Names) {
  EXPECT_STREQ(to_string(Scheme::kBaseline), "Baseline");
  EXPECT_STREQ(to_string(Scheme::kRandomBackoff), "Backoff");
  EXPECT_STREQ(to_string(Scheme::kRmwPred), "RMW-Pred");
  EXPECT_STREQ(to_string(Scheme::kPuno), "PUNO");
  EXPECT_STREQ(to_string(Scheme::kRequesterWins), "RequesterWins");
  EXPECT_STREQ(to_string(Scheme::kLimitedSet), "LimitedSet");
}

// The X-macro table guarantees to_string and scheme_from_string can never
// drift apart: every enum value round-trips through its canonical name.
TEST(Scheme, RoundTripsThroughStringTable) {
  for (const Scheme s : kAllSchemes) {
    const auto back = scheme_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s) << to_string(s);
  }
}

TEST(Scheme, AcceptsCliSpellings) {
  EXPECT_EQ(scheme_from_string("baseline"), Scheme::kBaseline);
  EXPECT_EQ(scheme_from_string("backoff"), Scheme::kRandomBackoff);
  EXPECT_EQ(scheme_from_string("rmw"), Scheme::kRmwPred);
  EXPECT_EQ(scheme_from_string("rmw-pred"), Scheme::kRmwPred);  // legacy
  EXPECT_EQ(scheme_from_string("puno"), Scheme::kPuno);
  EXPECT_EQ(scheme_from_string("reqwins"), Scheme::kRequesterWins);
  EXPECT_EQ(scheme_from_string("limited"), Scheme::kLimitedSet);
  EXPECT_EQ(scheme_from_string("nonesuch"), std::nullopt);
}

}  // namespace
}  // namespace puno
