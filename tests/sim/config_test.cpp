#include "sim/config.hpp"

#include <gtest/gtest.h>

namespace puno {
namespace {

TEST(SystemConfig, TableIIDefaults) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.num_nodes, 16u);
  EXPECT_EQ(cfg.cache.l1_size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.cache.l1_assoc, 4u);
  EXPECT_EQ(cfg.cache.l2_size_bytes, 8ull * 1024 * 1024);
  EXPECT_EQ(cfg.cache.l2_assoc, 8u);
  EXPECT_EQ(cfg.cache.l2_latency, 20u);
  EXPECT_EQ(cfg.cache.memory_latency, 200u);
  EXPECT_EQ(cfg.noc.mesh_width, 4u);
  EXPECT_EQ(cfg.noc.pipeline_stages, 4u);
  EXPECT_EQ(cfg.puno.pbuffer_entries, 16u);
  EXPECT_EQ(cfg.puno.txlb_entries, 32u);
  EXPECT_EQ(cfg.htm.fixed_backoff, 20u);
}

TEST(SystemConfig, BlockAlignment) {
  SystemConfig cfg;
  EXPECT_EQ(cfg.block_of(0), 0u);
  EXPECT_EQ(cfg.block_of(63), 0u);
  EXPECT_EQ(cfg.block_of(64), 64u);
  EXPECT_EQ(cfg.block_of(130), 128u);
}

TEST(SystemConfig, HomeInterleavingCoversAllNodes) {
  SystemConfig cfg;
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    const BlockAddr b = static_cast<BlockAddr>(n) * cfg.cache.block_bytes;
    EXPECT_EQ(cfg.home_of(b), n);
  }
  // Wraps around.
  EXPECT_EQ(cfg.home_of(16ull * 64), 0u);
}

TEST(SystemConfig, HomeIsStable) {
  SystemConfig cfg;
  const BlockAddr b = 7 * 64;
  EXPECT_EQ(cfg.home_of(b), cfg.home_of(b));
}

TEST(NocConfig, TotalVcs) {
  NocConfig n;
  EXPECT_EQ(n.total_vcs(), n.num_vnets * n.vcs_per_vnet);
}

TEST(Scheme, Names) {
  EXPECT_STREQ(to_string(Scheme::kBaseline), "Baseline");
  EXPECT_STREQ(to_string(Scheme::kRandomBackoff), "Backoff");
  EXPECT_STREQ(to_string(Scheme::kRmwPred), "RMW-Pred");
  EXPECT_STREQ(to_string(Scheme::kPuno), "PUNO");
  EXPECT_STREQ(to_string(Scheme::kRequesterWins), "RequesterWins");
  EXPECT_STREQ(to_string(Scheme::kLimitedSet), "LimitedSet");
}

// The X-macro table guarantees to_string and scheme_from_string can never
// drift apart: every enum value round-trips through its canonical name.
TEST(Scheme, RoundTripsThroughStringTable) {
  for (const Scheme s : kAllSchemes) {
    const auto back = scheme_from_string(to_string(s));
    ASSERT_TRUE(back.has_value()) << to_string(s);
    EXPECT_EQ(*back, s) << to_string(s);
  }
}

TEST(Scheme, AcceptsCliSpellings) {
  EXPECT_EQ(scheme_from_string("baseline"), Scheme::kBaseline);
  EXPECT_EQ(scheme_from_string("backoff"), Scheme::kRandomBackoff);
  EXPECT_EQ(scheme_from_string("rmw"), Scheme::kRmwPred);
  EXPECT_EQ(scheme_from_string("rmw-pred"), Scheme::kRmwPred);  // legacy
  EXPECT_EQ(scheme_from_string("puno"), Scheme::kPuno);
  EXPECT_EQ(scheme_from_string("reqwins"), Scheme::kRequesterWins);
  EXPECT_EQ(scheme_from_string("limited"), Scheme::kLimitedSet);
  EXPECT_EQ(scheme_from_string("nonesuch"), std::nullopt);
}

}  // namespace
}  // namespace puno
