// SmallFn unit tests: inline vs heap storage, move semantics (including
// move-only captures std::function cannot hold), and destruction counts.
#include "sim/smallfn.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

namespace puno::sim {
namespace {

/// Capture that counts how many live copies/moves of itself exist, to verify
/// SmallFn destroys the callable exactly once on every path.
struct LiveCounted {
  explicit LiveCounted(int* live) : live_(live) { ++*live_; }
  LiveCounted(const LiveCounted& o) noexcept : live_(o.live_) { ++*live_; }
  LiveCounted(LiveCounted&& o) noexcept : live_(o.live_) { ++*live_; }
  ~LiveCounted() { --*live_; }
  LiveCounted& operator=(const LiveCounted&) = delete;
  LiveCounted& operator=(LiveCounted&&) = delete;
  int* live_;
};

TEST(SmallFnTest, DefaultConstructedIsEmpty) {
  SmallFn<48> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
}

TEST(SmallFnTest, SmallCaptureStoredInline) {
  int hits = 0;
  SmallFn<48> fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, TypicalEventCaptureFitsInline) {
  // The shape schedule() call sites use: a this-pointer, a couple of ids
  // and a payload handle. This must never regress to a heap allocation.
  int sink = 0;
  int* self = &sink;
  std::uint64_t id = 7;
  std::uint32_t vc = 3;
  auto handle = std::make_shared<int>(9);
  SmallFn<48> fn([self, id, vc, handle] {
    *self = static_cast<int>(id + vc + static_cast<std::uint64_t>(*handle));
  });
  EXPECT_TRUE(fn.is_inline());
  fn();
  EXPECT_EQ(sink, 19);
}

TEST(SmallFnTest, OversizedCaptureFallsBackToHeap) {
  std::array<std::uint64_t, 16> big{};  // 128 bytes > 48-byte buffer
  big[0] = 41;
  int out = 0;
  SmallFn<48> fn([big, &out] { out = static_cast<int>(big[0]) + 1; });
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(out, 42);
}

TEST(SmallFnTest, MoveConstructTransfersCallable) {
  int hits = 0;
  SmallFn<48> a([&hits] { ++hits; });
  SmallFn<48> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFnTest, MoveAssignDestroysPreviousCallable) {
  int live = 0;
  int hits = 0;
  SmallFn<48> a([c = LiveCounted(&live)] { (void)c; });
  EXPECT_EQ(live, 1);
  SmallFn<48> b([&hits] { ++hits; });
  a = std::move(b);
  EXPECT_EQ(live, 0) << "move-assign must destroy the displaced callable";
  a();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFnTest, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(5);
  SmallFn<48> fn([p = std::move(owned)] { ++*p; });
  ASSERT_TRUE(static_cast<bool>(fn));
  SmallFn<48> moved(std::move(fn));
  moved();  // no observable output; the point is that it compiles and runs
}

TEST(SmallFnTest, DestroysInlineCaptureExactlyOnce) {
  int live = 0;
  {
    SmallFn<48> fn([c = LiveCounted(&live)] { (void)c; });
    EXPECT_TRUE(fn.is_inline());
    EXPECT_EQ(live, 1);
    SmallFn<48> moved(std::move(fn));
    EXPECT_EQ(live, 1) << "relocate must destroy the source copy";
    moved();
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

TEST(SmallFnTest, DestroysHeapCaptureExactlyOnce) {
  int live = 0;
  std::array<std::uint64_t, 16> pad{};
  {
    SmallFn<48> fn([c = LiveCounted(&live), pad] { (void)c; (void)pad; });
    EXPECT_FALSE(fn.is_inline());
    EXPECT_EQ(live, 1);
    SmallFn<48> moved(std::move(fn));
    EXPECT_EQ(live, 1);  // heap relocate just moves the pointer
    moved();
    EXPECT_EQ(live, 1);
  }
  EXPECT_EQ(live, 0);
}

}  // namespace
}  // namespace puno::sim
