#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace puno::sim {
namespace {

class RecordingTickable final : public Tickable {
 public:
  void tick(Cycle now) override { ticks.push_back(now); }
  std::vector<Cycle> ticks;
};

TEST(Kernel, StartsAtCycleZero) {
  Kernel k;
  EXPECT_EQ(k.now(), 0u);
}

TEST(Kernel, StepAdvancesClock) {
  Kernel k;
  k.step();
  k.step();
  EXPECT_EQ(k.now(), 2u);
}

TEST(Kernel, TickablesSeeEveryCycleInOrder) {
  Kernel k;
  RecordingTickable t;
  k.add_tickable(t);
  k.run_for(5);
  ASSERT_EQ(t.ticks.size(), 5u);
  for (Cycle c = 0; c < 5; ++c) EXPECT_EQ(t.ticks[c], c);
}

TEST(Kernel, TickableOrderIsRegistrationOrder) {
  Kernel k;
  std::vector<int> order;
  struct T final : Tickable {
    T(std::vector<int>* o, int i) : order(o), id(i) {}
    std::vector<int>* order;
    int id;
    void tick(Cycle) override { order->push_back(id); }
  };
  T a(&order, 1), b(&order, 2);
  k.add_tickable(a);
  k.add_tickable(b);
  k.step();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Kernel, EventFiresAtScheduledCycle) {
  Kernel k;
  Cycle fired_at = 0;
  k.schedule(3, [&] { fired_at = k.now(); });
  k.run_for(10);
  EXPECT_EQ(fired_at, 3u);
}

TEST(Kernel, ZeroDelayEventFiresSameCycle) {
  Kernel k;
  bool fired = false;
  k.schedule(0, [&] { fired = true; });
  k.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 1u);
}

TEST(Kernel, SameCycleEventsFifo) {
  Kernel k;
  std::vector<int> order;
  k.schedule(2, [&] { order.push_back(1); });
  k.schedule(2, [&] { order.push_back(2); });
  k.schedule(2, [&] { order.push_back(3); });
  k.run_for(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, EventsRunAfterTickablesWithinCycle) {
  Kernel k;
  std::vector<char> order;
  struct T final : Tickable {
    explicit T(std::vector<char>* o) : order(o) {}
    std::vector<char>* order;
    void tick(Cycle) override { order->push_back('t'); }
  };
  T t(&order);
  k.add_tickable(t);
  k.schedule(0, [&] { order.push_back('e'); });
  k.step();
  EXPECT_EQ(order, (std::vector<char>{'t', 'e'}));
}

TEST(Kernel, EventMayScheduleFurtherEvents) {
  Kernel k;
  int chain = 0;
  std::function<void()> hop = [&] {
    ++chain;
    if (chain < 4) k.schedule(1, hop);
  };
  k.schedule(1, hop);
  k.run_for(10);
  EXPECT_EQ(chain, 4);
}

TEST(Kernel, EventSchedulingZeroDelayFromEventRunsSameCycle) {
  Kernel k;
  Cycle inner_at = 99;
  k.schedule(1, [&] { k.schedule(0, [&] { inner_at = k.now(); }); });
  k.run_for(5);
  EXPECT_EQ(inner_at, 1u);
}

// Regression: a zero-delay event scheduled from inside a handler must run
// this cycle even when later-cycle events are already pending in the queue —
// the intended semantics must not depend on how the event heap happens to
// order its storage.
TEST(Kernel, ZeroDelayFromHandlerRunsBeforePendingLaterEvents) {
  Kernel k;
  std::vector<std::pair<char, Cycle>> order;
  k.schedule(3, [&] { order.emplace_back('L', k.now()); });  // later cycle
  k.schedule(2, [&] {
    order.emplace_back('H', k.now());
    k.schedule(0, [&] { order.emplace_back('Z', k.now()); });
  });
  k.run_for(5);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], (std::pair<char, Cycle>{'H', 2}));
  EXPECT_EQ(order[1], (std::pair<char, Cycle>{'Z', 2}));
  EXPECT_EQ(order[2], (std::pair<char, Cycle>{'L', 3}));
}

// Regression: a cascade of nested zero-delay events all drains within the
// cycle that spawned it.
TEST(Kernel, NestedZeroDelayCascadeDrainsSameCycle) {
  Kernel k;
  int depth = 0;
  Cycle last_at = 99;
  std::function<void()> nest = [&] {
    last_at = k.now();
    if (++depth < 5) k.schedule(0, nest);
  };
  k.schedule(2, nest);
  k.run_for(3);
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(last_at, 2u);
}

// Regression: a zero-delay event scheduled from a handler runs after every
// same-cycle event that was already queued (FIFO by scheduling order), not
// immediately after its parent.
TEST(Kernel, ZeroDelayFromHandlerRunsAfterQueuedSameCycleEvents) {
  Kernel k;
  std::vector<int> order;
  k.schedule(1, [&] {
    order.push_back(1);
    k.schedule(0, [&] { order.push_back(3); });
  });
  k.schedule(1, [&] { order.push_back(2); });
  k.run_for(3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, ZeroDelayFromTickableRunsSameCycle) {
  Kernel k;
  struct T final : Tickable {
    Kernel* k;
    Cycle fired_at = 99;
    bool armed = false;
    explicit T(Kernel* kk) : k(kk) {}
    void tick(Cycle) override {
      if (armed) return;
      armed = true;
      k->schedule(0, [this] { fired_at = k->now(); });
    }
  };
  T t(&k);
  k.add_tickable(t);
  k.step();
  EXPECT_EQ(t.fired_at, 0u);
}

TEST(Kernel, PostCycleHookRunsAfterTickablesAndEvents) {
  Kernel k;
  std::vector<char> order;
  struct T final : Tickable {
    std::vector<char>* order;
    explicit T(std::vector<char>* o) : order(o) {}
    void tick(Cycle) override { order->push_back('t'); }
  };
  T t(&order);
  k.add_tickable(t);
  k.schedule(0, [&] { order.push_back('e'); });
  k.add_post_cycle_hook([&](Cycle) { order.push_back('h'); });
  k.step();
  EXPECT_EQ(order, (std::vector<char>{'t', 'e', 'h'}));
}

TEST(Kernel, PostCycleHookSeesTheCycleJustExecuted) {
  Kernel k;
  std::vector<Cycle> seen;
  k.add_post_cycle_hook([&](Cycle c) { seen.push_back(c); });
  k.run_for(3);
  EXPECT_EQ(seen, (std::vector<Cycle>{0, 1, 2}));
}

// Hooks are observers: an event scheduled from a hook (even delay 0) runs in
// the next cycle, after that cycle's tickables.
TEST(Kernel, EventScheduledFromPostCycleHookRunsNextCycle) {
  Kernel k;
  Cycle fired_at = 99;
  bool armed = false;
  k.add_post_cycle_hook([&](Cycle) {
    if (armed) return;
    armed = true;
    k.schedule(0, [&] { fired_at = k.now(); });
  });
  k.run_for(3);
  EXPECT_EQ(fired_at, 1u);
}

TEST(Kernel, RunUntilStopsOnPredicate) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    k.schedule(1, tick);
  };
  k.schedule(1, tick);
  const bool done = k.run_until([&] { return count >= 5; }, 1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(count, 5);
  EXPECT_LT(k.now(), 1000u);
}

TEST(Kernel, RunUntilRespectsCycleBudget) {
  Kernel k;
  const bool done = k.run_until([] { return false; }, 50);
  EXPECT_FALSE(done);
  EXPECT_EQ(k.now(), 50u);
}

TEST(Kernel, PendingEventsCount) {
  Kernel k;
  k.schedule(5, [] {});
  k.schedule(6, [] {});
  EXPECT_EQ(k.pending_events(), 2u);
  k.run_for(10);
  EXPECT_EQ(k.pending_events(), 0u);
}

TEST(Kernel, StatsRegistryIsShared) {
  Kernel k;
  k.stats().counter("x").add(2);
  EXPECT_EQ(k.stats().counter("x").value(), 2u);
}

}  // namespace
}  // namespace puno::sim
