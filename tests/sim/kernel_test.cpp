#include "sim/kernel.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace puno::sim {
namespace {

class RecordingTickable final : public Tickable {
 public:
  void tick(Cycle now) override { ticks.push_back(now); }
  std::vector<Cycle> ticks;
};

TEST(Kernel, StartsAtCycleZero) {
  Kernel k;
  EXPECT_EQ(k.now(), 0u);
}

TEST(Kernel, StepAdvancesClock) {
  Kernel k;
  k.step();
  k.step();
  EXPECT_EQ(k.now(), 2u);
}

TEST(Kernel, TickablesSeeEveryCycleInOrder) {
  Kernel k;
  RecordingTickable t;
  k.add_tickable(t);
  k.run_for(5);
  ASSERT_EQ(t.ticks.size(), 5u);
  for (Cycle c = 0; c < 5; ++c) EXPECT_EQ(t.ticks[c], c);
}

TEST(Kernel, TickableOrderIsRegistrationOrder) {
  Kernel k;
  std::vector<int> order;
  struct T final : Tickable {
    T(std::vector<int>* o, int i) : order(o), id(i) {}
    std::vector<int>* order;
    int id;
    void tick(Cycle) override { order->push_back(id); }
  };
  T a(&order, 1), b(&order, 2);
  k.add_tickable(a);
  k.add_tickable(b);
  k.step();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(Kernel, EventFiresAtScheduledCycle) {
  Kernel k;
  Cycle fired_at = 0;
  k.schedule(3, [&] { fired_at = k.now(); });
  k.run_for(10);
  EXPECT_EQ(fired_at, 3u);
}

TEST(Kernel, ZeroDelayEventFiresSameCycle) {
  Kernel k;
  bool fired = false;
  k.schedule(0, [&] { fired = true; });
  k.step();
  EXPECT_TRUE(fired);
  EXPECT_EQ(k.now(), 1u);
}

TEST(Kernel, SameCycleEventsFifo) {
  Kernel k;
  std::vector<int> order;
  k.schedule(2, [&] { order.push_back(1); });
  k.schedule(2, [&] { order.push_back(2); });
  k.schedule(2, [&] { order.push_back(3); });
  k.run_for(5);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Kernel, EventsRunAfterTickablesWithinCycle) {
  Kernel k;
  std::vector<char> order;
  struct T final : Tickable {
    explicit T(std::vector<char>* o) : order(o) {}
    std::vector<char>* order;
    void tick(Cycle) override { order->push_back('t'); }
  };
  T t(&order);
  k.add_tickable(t);
  k.schedule(0, [&] { order.push_back('e'); });
  k.step();
  EXPECT_EQ(order, (std::vector<char>{'t', 'e'}));
}

TEST(Kernel, EventMayScheduleFurtherEvents) {
  Kernel k;
  int chain = 0;
  std::function<void()> hop = [&] {
    ++chain;
    if (chain < 4) k.schedule(1, hop);
  };
  k.schedule(1, hop);
  k.run_for(10);
  EXPECT_EQ(chain, 4);
}

TEST(Kernel, EventSchedulingZeroDelayFromEventRunsSameCycle) {
  Kernel k;
  Cycle inner_at = 99;
  k.schedule(1, [&] { k.schedule(0, [&] { inner_at = k.now(); }); });
  k.run_for(5);
  EXPECT_EQ(inner_at, 1u);
}

TEST(Kernel, RunUntilStopsOnPredicate) {
  Kernel k;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    k.schedule(1, tick);
  };
  k.schedule(1, tick);
  const bool done = k.run_until([&] { return count >= 5; }, 1000);
  EXPECT_TRUE(done);
  EXPECT_EQ(count, 5);
  EXPECT_LT(k.now(), 1000u);
}

TEST(Kernel, RunUntilRespectsCycleBudget) {
  Kernel k;
  const bool done = k.run_until([] { return false; }, 50);
  EXPECT_FALSE(done);
  EXPECT_EQ(k.now(), 50u);
}

TEST(Kernel, PendingEventsCount) {
  Kernel k;
  k.schedule(5, [] {});
  k.schedule(6, [] {});
  EXPECT_EQ(k.pending_events(), 2u);
  k.run_for(10);
  EXPECT_EQ(k.pending_events(), 0u);
}

TEST(Kernel, StatsRegistryIsShared) {
  Kernel k;
  k.stats().counter("x").add(2);
  EXPECT_EQ(k.stats().counter("x").value(), 2u);
}

}  // namespace
}  // namespace puno::sim
