#include "hwcost/hwcost.hpp"

#include <gtest/gtest.h>

namespace puno::hwcost {
namespace {

TEST(HwCost, ReproducesTableIIIComponents) {
  SystemConfig cfg;  // Table II defaults: 16 nodes, 16-entry P-Buffer, 32 TxLB
  const PunoCost c = estimate(cfg);
  EXPECT_NEAR(c.pbuffer.area_um2, 4700.0, 1.0);
  EXPECT_NEAR(c.pbuffer.power_mw, 7.28, 0.01);
  EXPECT_NEAR(c.txlb.area_um2, 5380.0, 1.0);
  EXPECT_NEAR(c.txlb.power_mw, 7.52, 0.01);
  EXPECT_NEAR(c.ud_pointers.area_um2, 47400.0, 1.0);
  EXPECT_NEAR(c.ud_pointers.power_mw, 16.43, 0.01);
}

TEST(HwCost, ReproducesTableIIITotals) {
  const PunoCost c = estimate(SystemConfig{});
  EXPECT_NEAR(c.total.area_um2, 57480.0, 1.0);
  EXPECT_NEAR(c.total.power_mw, 31.23, 0.01);
}

TEST(HwCost, ReproducesHeadlineOverheads) {
  // Abstract: 0.41% area and 0.31% power versus a Sun Rock core.
  const PunoCost c = estimate(SystemConfig{});
  EXPECT_NEAR(c.area_overhead, 0.0041, 0.0002);
  EXPECT_NEAR(c.power_overhead, 0.0031, 0.0002);
}

TEST(HwCost, BitCountsScaleWithEntries) {
  SystemConfig cfg;
  const PunoBits base = count_bits(cfg);
  cfg.puno.pbuffer_entries *= 2;
  const PunoBits doubled = count_bits(cfg);
  EXPECT_GT(doubled.pbuffer_bits, base.pbuffer_bits);
  EXPECT_LT(doubled.pbuffer_bits, 2 * base.pbuffer_bits)
      << "the rollover counter is shared, so scaling is sub-linear";
  EXPECT_EQ(doubled.txlb_bits, base.txlb_bits);
}

TEST(HwCost, CostScalesWithStructureSizes) {
  SystemConfig big;
  big.puno.txlb_entries = 64;
  const PunoCost c_big = estimate(big);
  const PunoCost c_base = estimate(SystemConfig{});
  EXPECT_NEAR(c_big.txlb.area_um2, 2 * c_base.txlb.area_um2, 1.0);
  EXPECT_NEAR(c_big.pbuffer.area_um2, c_base.pbuffer.area_um2, 1.0);
}

TEST(HwCost, TechnologyScaling) {
  TechPoint tech32;
  tech32.node_nm = 32;  // ~(32/65)^2 of the area
  const PunoCost scaled = estimate(SystemConfig{}, ReferenceChip{}, tech32);
  const PunoCost base = estimate(SystemConfig{});
  EXPECT_LT(scaled.total.area_um2, base.total.area_um2 * 0.3);
  // Lower Vdd cuts power quadratically.
  TechPoint lowv;
  lowv.vdd = 0.45;
  const PunoCost lv = estimate(SystemConfig{}, ReferenceChip{}, lowv);
  EXPECT_NEAR(lv.total.power_mw, base.total.power_mw * 0.25, 0.1);
}

TEST(HwCost, ReferenceChipIsRock) {
  ReferenceChip rock;
  EXPECT_EQ(rock.cores, 16u);
  EXPECT_DOUBLE_EQ(rock.core_area_um2, 14'000'000.0);
  EXPECT_DOUBLE_EQ(rock.core_power_w, 10.0);
  EXPECT_DOUBLE_EQ(rock.total_area_um2(), 224'000'000.0);
}

TEST(HwCost, PBufferBitAccounting) {
  SystemConfig cfg;
  const PunoBits b = count_bits(cfg, /*timestamp_bits=*/32);
  // Per node: 16 entries * (32+2) bits + 32-bit rollover = 576; x16 nodes.
  EXPECT_EQ(b.pbuffer_bits, 576u * 16u);
  // TxLB: 32 entries * (16+24) = 1280 bits per node.
  EXPECT_EQ(b.txlb_bits, 1280u * 16u);
}

}  // namespace
}  // namespace puno::hwcost
