// Active-set scheduling equivalence: the hot-path mesh (tick only routers
// and NIs in the active sets) must be bit-identical to the always-tick
// reference sweep. Runs the fuzz driver's randomized whole-CMP simulations
// across 32 seeds and every scheme with noc.always_tick flipped, and
// compares the full stats dump — one differing counter anywhere (cycle
// counts, traversals, abort causes, latencies) fails the test.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "check/invariants.hpp"
#include "sim/config.hpp"
#include "workloads/synthetic.hpp"

namespace puno::check {
namespace {

constexpr std::uint64_t kNumSeeds = 32;
constexpr Cycle kMaxCycles = 2'000'000;

/// Runs one fuzz case twice — active-set path vs always-tick reference —
/// and requires identical outcomes down to the last stats counter.
void expect_equivalent(std::uint64_t seed, Scheme scheme) {
  const workloads::SyntheticSpec spec = make_fuzz_spec(seed);
  // Coarse checker stride: the invariant oracle (including the active-set
  // coverage check in kNocConservation) still samples both runs, but the
  // comparison below is the real oracle here.
  CheckerConfig checker;
  checker.stride = 64;

  SystemConfig cfg = make_fuzz_config(seed, scheme);
  cfg.noc.always_tick = false;
  const RunOutcome active = run_one(cfg, spec, checker, kMaxCycles);
  cfg.noc.always_tick = true;
  const RunOutcome reference = run_one(cfg, spec, checker, kMaxCycles);

  const std::string label = "seed " + std::to_string(seed) + " scheme " +
                            scheme_flag(scheme);
  EXPECT_TRUE(active.violations.empty()) << label;
  EXPECT_TRUE(reference.violations.empty()) << label;
  EXPECT_EQ(active.completed, reference.completed) << label;
  EXPECT_EQ(active.cycles, reference.cycles) << label;
  EXPECT_EQ(active.commits, reference.commits) << label;
  EXPECT_EQ(active.total_committed, reference.total_committed) << label;
  EXPECT_EQ(active.falsely_aborted, reference.falsely_aborted) << label;
  // The decisive check: every stat the simulation exports, byte for byte.
  EXPECT_EQ(active.stats_csv, reference.stats_csv) << label;
}

class ActiveSetEquivalenceTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(ActiveSetEquivalenceTest, BitIdenticalAcrossFuzzSeeds) {
  for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
    expect_equivalent(seed, GetParam());
    if (::testing::Test::HasFailure()) {
      FAIL() << "first divergence at seed " << seed
             << "; repro: " << repro_line(seed, GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ActiveSetEquivalenceTest,
                         ::testing::Values(Scheme::kBaseline,
                                           Scheme::kRandomBackoff,
                                           Scheme::kRmwPred, Scheme::kPuno),
                         [](const auto& info) {
                           return std::string(scheme_flag(info.param));
                         });

}  // namespace
}  // namespace puno::check
