// Determinism oracle for the fuzz harness: the same seed must produce the
// same cycle-exact simulation — byte-identical stats output — or the
// one-command repro lines the fuzzer prints would be worthless.
#include <gtest/gtest.h>

#include "check/fuzz.hpp"

namespace puno::check {
namespace {

TEST(FuzzDeterminism, SameSeedIsByteIdentical) {
  const std::uint64_t seed = 11;
  const auto spec = make_fuzz_spec(seed);
  const auto cfg = make_fuzz_config(seed, Scheme::kPuno);
  CheckerConfig ccfg;
  const RunOutcome a = run_one(cfg, spec, ccfg, 2'000'000);
  const RunOutcome b = run_one(cfg, spec, ccfg, 2'000'000);
  ASSERT_TRUE(a.completed);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.commits, b.commits);
  EXPECT_FALSE(a.stats_csv.empty());
  EXPECT_EQ(a.stats_csv, b.stats_csv) << "same-seed runs diverged";
}

TEST(FuzzDeterminism, SpecAndConfigDeriveFromSeedOnly) {
  const auto s1 = make_fuzz_spec(42);
  const auto s2 = make_fuzz_spec(42);
  EXPECT_EQ(s1.hot_blocks, s2.hot_blocks);
  EXPECT_EQ(s1.txns_per_node, s2.txns_per_node);
  EXPECT_EQ(s1.txns.size(), s2.txns.size());
  const auto c1 = make_fuzz_config(42, Scheme::kBaseline);
  const auto c2 = make_fuzz_config(42, Scheme::kPuno);
  // Same seed, different scheme: identical machines except the scheme, which
  // is what makes the cross-scheme differential oracle meaningful.
  EXPECT_EQ(c1.num_nodes, c2.num_nodes);
  EXPECT_EQ(c1.noc.mesh_width, c2.noc.mesh_width);
  EXPECT_EQ(c1.seed, c2.seed);
  EXPECT_NE(c1.scheme, c2.scheme);
}

TEST(FuzzDeterminism, DifferentSeedsVaryTheShape) {
  // Not a strict requirement seed-by-seed, but across a handful of seeds
  // the randomized shape must actually move, or the fuzzer explores nothing.
  bool any_different = false;
  const auto base = make_fuzz_spec(1);
  for (std::uint64_t s = 2; s <= 8; ++s) {
    const auto spec = make_fuzz_spec(s);
    if (spec.hot_blocks != base.hot_blocks ||
        spec.txns_per_node != base.txns_per_node ||
        spec.txns.size() != base.txns.size()) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(FuzzReportApi, ReproLineNamesSeedSchemeAndStride) {
  const std::string line = repro_line(17, Scheme::kPuno);
  EXPECT_NE(line.find("--seed-start 17"), std::string::npos);
  EXPECT_NE(line.find("--scheme puno"), std::string::npos);
  EXPECT_NE(line.find("--stride 1"), std::string::npos);
}

}  // namespace
}  // namespace puno::check
