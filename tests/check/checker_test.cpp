// Unit tests for the protocol invariant oracle: every invariant is
// exercised both ways — clean protocol activity must not trip it, and a
// seeded corruption of exactly the state it guards must.
#include <gtest/gtest.h>

#include <string>

#include "check/invariant_checker.hpp"
#include "../support/fixture.hpp"

namespace puno::check {
namespace {

using coherence::node_bit;

class CheckerFixture : public puno::testing::ProtocolFixture {
 protected:
  explicit CheckerFixture(SystemConfig cfg = {})
      : ProtocolFixture(std::move(cfg)) {
    wire_checker(CheckerConfig{});
  }

  void wire_checker(CheckerConfig ccfg) {
    checker_ = std::make_unique<InvariantChecker>(ccfg);
    for (const auto& d : dirs_) checker_->watch_directory(*d);
    for (const auto& l1 : l1s_) checker_->watch_l1(*l1);
    for (const auto& t : txns_) checker_->watch_txn(*t);
    checker_->watch_mesh(*mesh_, kernel_.stats());
  }

  void check() { checker_->check_now(kernel_.now()); }

  /// The first violation, which the seeded-corruption tests inspect.
  [[nodiscard]] const Violation& first() const {
    EXPECT_FALSE(checker_->clean());
    static const Violation kNone{};
    return checker_->clean() ? kNone : checker_->violations().front();
  }

  std::unique_ptr<InvariantChecker> checker_;
};

class PunoCheckerFixture : public CheckerFixture {
 protected:
  PunoCheckerFixture() : CheckerFixture(puno_config()) {}
  static SystemConfig puno_config() {
    SystemConfig cfg;
    cfg.scheme = Scheme::kPuno;
    return cfg;
  }
};

TEST_F(CheckerFixture, CleanProtocolActivityReportsNothing) {
  // Shared readers, an exclusive writer, an upgrade, and an eviction-heavy
  // pattern: the usual protocol shapes must all verify clean.
  ASSERT_TRUE(do_load(1, 0x1000));
  ASSERT_TRUE(do_load(2, 0x1000));
  ASSERT_TRUE(do_store(3, 0x2000));
  ASSERT_TRUE(do_store(1, 0x1000));  // upgrade with sharer invalidation
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(do_load(0, 0x10000 + static_cast<Addr>(i) * 0x1000));
  }
  check();
  for (const auto& v : checker_->violations()) {
    ADD_FAILURE() << format_violation(v);
  }
}

TEST_F(CheckerFixture, InstalledHookSweepsAtTheConfiguredStride) {
  CheckerConfig ccfg;
  ccfg.stride = 4;
  wire_checker(ccfg);
  checker_->install(kernel_);
  run(16);
  // Cycles 0,4,8,12 (the hook fires before now advances past 15).
  EXPECT_EQ(checker_->sweeps(), 4u);
  EXPECT_TRUE(checker_->clean());
}

TEST_F(CheckerFixture, DirStateCorruptionDetected) {
  ASSERT_TRUE(do_load(1, 0x1000));  // node 1 gets 0x1000 exclusive (E)
  auto* e = dirs_[cfg_.home_of(0x1000)]->mutable_entry_for_test(0x1000);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->state, coherence::Directory::DirState::kEM);
  e->sharers.add(5);  // EM must have an empty sharer list
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kDirState);
  EXPECT_EQ(v.addr, 0x1000u);
  EXPECT_EQ(v.node, cfg_.home_of(0x1000));
}

TEST_F(CheckerFixture, DirL1OwnerMismatchDetected) {
  ASSERT_TRUE(do_store(2, 0x3000));  // node 2 owns 0x3000 in M
  // A buggy protocol drops the line from the owner's cache without a PutX.
  l1s_[2]->corrupt_invalidate_for_test(0x3000);
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kDirL1);
  EXPECT_EQ(v.addr, 0x3000u);
}

TEST_F(CheckerFixture, DirL1MissingSharerDetected) {
  ASSERT_TRUE(do_load(1, 0x4000));
  ASSERT_TRUE(do_load(2, 0x4000));  // line settles in S at both
  auto* e = dirs_[cfg_.home_of(0x4000)]->mutable_entry_for_test(0x4000);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->state, coherence::Directory::DirState::kS);
  e->sharers.remove(1);  // stale-inclusivity violated: real sharer lost
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kDirL1);
  EXPECT_EQ(v.node, 1u);
  EXPECT_EQ(v.addr, 0x4000u);
}

TEST_F(PunoCheckerFixture, StaleUdPointerDetected) {
  ASSERT_TRUE(do_load(1, 0x5000));
  ASSERT_TRUE(do_load(2, 0x5000));
  auto* e = dirs_[cfg_.home_of(0x5000)]->mutable_entry_for_test(0x5000);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->state, coherence::Directory::DirState::kS);
  e->ud = 7;  // node 7 never touched the line
  ASSERT_FALSE(e->sharers.contains(7));
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kUdPointer);
  EXPECT_EQ(v.addr, 0x5000u);
  // The report names the invariant, cycle and home node for the repro.
  const std::string line = format_violation(v);
  EXPECT_NE(line.find("UD-POINTER"), std::string::npos);
  EXPECT_NE(line.find("cycle"), std::string::npos);
}

TEST_F(CheckerFixture, UnpinnedTransactionalLineDetected) {
  // Scope to TXN-PIN: dropping a cached line also (correctly) breaks the
  // DIR-L1 agreement, which is covered by its own test above.
  CheckerConfig ccfg = CheckerConfig::none();
  ccfg.txn_pin = true;
  wire_checker(ccfg);
  txns_[3]->begin(0);
  ASSERT_TRUE(do_load(3, 0x6000, /*transactional=*/true));
  ASSERT_TRUE(do_store(3, 0x7000, /*transactional=*/true));
  check();
  EXPECT_TRUE(checker_->clean());  // pinned sets are fine
  // A (hypothetical) replacement bug silently evicts a read-set line.
  l1s_[3]->corrupt_invalidate_for_test(0x6000);
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kTxnPin);
  EXPECT_EQ(v.node, 3u);
  EXPECT_EQ(v.addr, 0x6000u);
  txns_[3]->commit();
}

TEST_F(CheckerFixture, WriteSetLineNotInMDetected) {
  txns_[4]->begin(0);
  ASSERT_TRUE(do_store(4, 0x8000, /*transactional=*/true));
  auto* e = dirs_[cfg_.home_of(0x8000)]->mutable_entry_for_test(0x8000);
  ASSERT_NE(e, nullptr);
  // Corrupt the L1 copy away entirely: write set says M, cache says gone.
  l1s_[4]->corrupt_invalidate_for_test(0x8000);
  check();
  bool found = false;
  for (const auto& v : checker_->violations()) {
    if (v.id == InvariantId::kTxnPin && v.addr == 0x8000u) found = true;
  }
  EXPECT_TRUE(found);
  txns_[4]->commit();
}

TEST_F(CheckerFixture, DroppedFlitBreaksConservation) {
  // Launch a cross-tile miss, advance until some flit is buffered in a
  // router, and make it vanish — as a flow-control bug would.
  auto done = async_load(0, 0x9000 + 0x40, /*transactional=*/false);
  bool dropped = false;
  for (int i = 0; i < 200 && !dropped; ++i) {
    run(1);
    dropped = mesh_->corrupt_drop_flit_for_test();
  }
  ASSERT_TRUE(dropped) << "no flit ever occupied a router buffer";
  check();
  const Violation& v = first();
  EXPECT_EQ(v.id, InvariantId::kNocConservation);
  EXPECT_NE(v.detail.find("injected"), std::string::npos);
}

TEST_F(CheckerFixture, DisabledInvariantStaysSilent) {
  CheckerConfig ccfg;
  ccfg.dir_state = false;
  wire_checker(ccfg);
  ASSERT_TRUE(do_load(1, 0xa000));
  auto* e = dirs_[cfg_.home_of(0xa000)]->mutable_entry_for_test(0xa000);
  ASSERT_NE(e, nullptr);
  e->sharers.add(9);  // would trip DIR-STATE if it were enabled
  check();
  for (const auto& v : checker_->violations()) {
    EXPECT_NE(v.id, InvariantId::kDirState) << format_violation(v);
  }
}

TEST_F(CheckerFixture, ViolationRecordingIsCapped) {
  CheckerConfig ccfg;
  ccfg.max_violations = 3;
  wire_checker(ccfg);
  ASSERT_TRUE(do_load(1, 0xb000));
  for (int i = 0; i < 8; ++i) {
    const Addr a = 0xc000 + static_cast<Addr>(i) * 0x400;
    ASSERT_TRUE(do_load(2, a));
    auto* e = dirs_[cfg_.home_of(a)]->mutable_entry_for_test(a);
    ASSERT_NE(e, nullptr);
    e->sharers.add(1);  // corrupt EM entries en masse
    e->sharers.add(2);
  }
  check();
  EXPECT_EQ(checker_->violations().size(), 3u);
}

}  // namespace
}  // namespace puno::check
