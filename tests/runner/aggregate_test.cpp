// Fleet-aggregation contracts (tools/punoagg's library layer):
//
//   1. Manifest/aggregate JSONL parse + exact round-trip; malformed lines
//      are rejected with the offending token quoted (the trace-parser error
//      convention).
//   2. The aggregate is deterministic: byte-identical however many worker
//      threads ran the sweep, however the manifest rows were ordered.
//   3. publish_aggregate merges append-safely (existing keys survive, fresh
//      rows win) and leaves no temp droppings behind.
//   4. The perf trajectory flags a synthetic 0.5x regression and orders
//      stamped snapshots by generated_at regardless of argument order.
//   5. The fleet dashboard is self-contained and escapes its inputs.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/stats_io.hpp"
#include "runner/aggregate.hpp"
#include "runner/grid.hpp"
#include "runner/runner.hpp"

namespace puno::runner {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() /
             (std::string("puno-aggregate-test-") + tag)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::trunc);
  out << text;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

AggregateRow sample_row(const std::string& key, const std::string& workload,
                        const std::string& scheme) {
  AggregateRow r;
  r.key = key;
  r.workload = workload;
  r.scheme = scheme;
  r.seed = 1;
  r.scale = 0.25;
  r.num_nodes = 8;
  r.mesh_width = 4;
  r.mesh_height = 2;
  r.status = "ok";
  r.cycles = 1000;
  r.has_result = true;
  r.commits = 42;
  r.aborts = 7;
  r.false_abort_events = 3;
  r.router_traversals = 900;
  r.heat_channel = "aborts";
  r.tile_heat = {1, 0, 2, 0, 1, 0, 2, 1};
  return r;
}

TEST(ManifestParse, ReadsEveryFieldAndSkipsUnknownKeys) {
  ManifestRow row;
  std::string err;
  ASSERT_TRUE(parse_manifest_row(
      R"({"index":3,"label":"a/b/s1","workload":"intruder","scheme":"PUNO",)"
      R"("seed":1,"scale":0.5,"max_cycles":1000,"num_nodes":256,)"
      R"("mesh_width":32,"mesh_height":8,"key":"v7-abc","status":"cached",)"
      R"("attempts":1,"wall_s":0.25,"cycles":900,"cycles_per_s":3600,)"
      R"("future_key":[1,2,3],"telemetry_path":"t.jsonl"})",
      row, &err))
      << err;
  EXPECT_EQ(row.index, 3u);
  EXPECT_EQ(row.workload, "intruder");
  EXPECT_EQ(row.num_nodes, 256u);
  EXPECT_EQ(row.mesh_width, 32u);
  EXPECT_EQ(row.mesh_height, 8u);
  EXPECT_EQ(row.status, "cached");
  EXPECT_EQ(row.telemetry_path, "t.jsonl");
}

TEST(ManifestParse, QuotesTheOffendingToken) {
  ManifestRow row;
  std::string err;
  EXPECT_FALSE(parse_manifest_row(R"({"index":bogus123,"seed":1})", row,
                                  &err));
  EXPECT_NE(err.find("'bogus123"), std::string::npos)
      << "error must quote the offending token: " << err;

  EXPECT_FALSE(parse_manifest_row(R"({"index":1 "seed":2})", row, &err));
  EXPECT_NE(err.find("',' or '}'"), std::string::npos) << err;

  TempDir dir("badmanifest");
  write_file(dir.path / "runs.jsonl",
             "{\"index\":0,\"key\":\"k\"}\n{\"index\":oops}\n");
  try {
    (void)read_manifest_file(dir.path / "runs.jsonl");
    FAIL() << "malformed manifest must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'oops"), std::string::npos)
        << e.what();
  }
}

TEST(AggregateRowIo, RoundTripsByteExactly) {
  const AggregateRow row = sample_row("v7-1", "intruder", "PUNO");
  std::ostringstream os;
  write_aggregate_row(row, os);
  AggregateRow parsed;
  std::string err;
  const std::string line = os.str().substr(0, os.str().size() - 1);
  ASSERT_TRUE(parse_aggregate_row(line, parsed, &err)) << err;
  std::ostringstream os2;
  write_aggregate_row(parsed, os2);
  EXPECT_EQ(os.str(), os2.str());
  EXPECT_TRUE(parsed.has_result);
  EXPECT_EQ(parsed.tile_heat, row.tile_heat);

  // A failed row without metrics or heat keeps its conditional keys out.
  AggregateRow bare;
  bare.key = "v7-2";
  bare.workload = "vacation";
  bare.scheme = "Baseline";
  bare.status = "failed";
  std::ostringstream os3;
  write_aggregate_row(bare, os3);
  EXPECT_EQ(os3.str().find("commits"), std::string::npos);
  EXPECT_EQ(os3.str().find("tile_heat"), std::string::npos);
  ASSERT_TRUE(parse_aggregate_row(
      os3.str().substr(0, os3.str().size() - 1), parsed, &err));
  EXPECT_FALSE(parsed.has_result);
}

TEST(AggregatePublish, MergesByKeyAndLeavesNoTempFiles) {
  TempDir dir("publish");
  const fs::path agg = dir.path / "fleet.jsonl";
  std::string err;

  ASSERT_TRUE(publish_aggregate(
      agg, {sample_row("v7-a", "intruder", "PUNO"),
            sample_row("v7-b", "intruder", "Baseline")},
      &err))
      << err;
  const std::string first = read_file(agg);

  // Re-publishing one fresh row for an existing key plus one new key keeps
  // the untouched row and updates the re-keyed one.
  AggregateRow update = sample_row("v7-b", "intruder", "Baseline");
  update.commits = 99;
  ASSERT_TRUE(publish_aggregate(
      agg, {update, sample_row("v7-c", "vacation", "PUNO")}, &err))
      << err;
  const std::string merged = read_file(agg);
  EXPECT_NE(merged.find("\"commits\":99"), std::string::npos);
  EXPECT_NE(merged.find("v7-a"), std::string::npos)
      << "previously published rows survive a merge";
  EXPECT_NE(merged.find("v7-c"), std::string::npos);
  EXPECT_NE(merged, first);

  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir.path)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 1u) << "atomic publish must not leave temp files";

  // Publishing the same rows again is idempotent, byte for byte.
  ASSERT_TRUE(publish_aggregate(agg, {update}, &err));
  EXPECT_EQ(read_file(agg), merged);
}

TEST(AggregateSort, OrderIsIndependentOfInputOrder) {
  std::vector<AggregateRow> a = {sample_row("v7-1", "vacation", "PUNO"),
                                 sample_row("v7-2", "intruder", "PUNO"),
                                 sample_row("v7-3", "intruder", "Baseline")};
  std::vector<AggregateRow> b = {a[2], a[0], a[1]};
  sort_aggregate(a);
  sort_aggregate(b);
  std::ostringstream oa, ob;
  for (const auto& r : a) write_aggregate_row(r, oa);
  for (const auto& r : b) write_aggregate_row(r, ob);
  EXPECT_EQ(oa.str(), ob.str());
}

/// Runs a small real sweep with the given worker count and aggregates it.
std::string aggregate_bytes(const fs::path& dir, unsigned jobs) {
  GridSpec grid;
  grid.workloads = {"kmeans"};
  grid.schemes = {Scheme::kBaseline, Scheme::kPuno};
  grid.seeds = {1, 2};
  grid.scale = 0.05;
  grid.max_cycles = 200'000;
  std::vector<JobSpec> specs = expand_grid(grid);

  RunnerOptions options;
  options.jobs = jobs;
  options.manifest_path = (dir / "runs.jsonl").string();
  const SweepResult sweep = run_jobs(specs, options);

  std::vector<metrics::RunResult> results;
  for (const JobOutcome& o : sweep.outcomes) results.push_back(o.result);
  {
    std::ofstream out(dir / "out.jsonl", std::ios::trunc);
    metrics::write_results_jsonl(results, out);
  }
  auto rows = aggregate_manifest(dir / "runs.jsonl", dir / "out.jsonl");
  sort_aggregate(rows);
  std::ostringstream os;
  for (const auto& r : rows) write_aggregate_row(r, os);
  return os.str();
}

TEST(AggregateDeterminism, ByteIdenticalAcrossWorkerCounts) {
  TempDir one("jobs1");
  TempDir eight("jobs8");
  const std::string a = aggregate_bytes(one.path, 1);
  const std::string b = aggregate_bytes(eight.path, 8);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "aggregate rows must not depend on scheduling";
}

std::string bench_json(const std::string& generated_at, double puno_cps,
                       double baseline_cps) {
  std::ostringstream os;
  os << "{\"schema\":\"puno-bench-baseline-2\",\"git_sha\":\"cafe1234\","
     << "\"config_schema\":7,\"generated_at\":\"" << generated_at
     << "\",\"ticks_per_second\":1e9,\"runs\":["
     << "{\"workload\":\"intruder\",\"scheme\":\"PUNO\",\"seed\":1,"
     << "\"completed\":true,\"cycles\":100000,\"commits\":10,\"wall_s\":1.0,"
     << "\"cycles_per_s\":" << puno_cps << ",\"components\":[]},"
     << "{\"workload\":\"intruder\",\"scheme\":\"Baseline\",\"seed\":1,"
     << "\"completed\":true,\"cycles\":100000,\"commits\":10,\"wall_s\":1.0,"
     << "\"cycles_per_s\":" << baseline_cps << ",\"components\":[]}]}";
  return os.str();
}

TEST(Trajectory, FlagsASyntheticHalfSpeedRegression) {
  TempDir dir("traj");
  write_file(dir.path / "old.json",
             bench_json("2026-08-01T00:00:00Z", 1000.0, 1000.0));
  write_file(dir.path / "new.json",
             bench_json("2026-08-08T00:00:00Z", 500.0, 990.0));

  BenchSnapshot older, newer;
  std::string err;
  ASSERT_TRUE(read_bench_snapshot(dir.path / "old.json", older, &err))
      << err;
  ASSERT_TRUE(read_bench_snapshot(dir.path / "new.json", newer, &err));
  ASSERT_EQ(older.rows.size(), 2u);
  EXPECT_EQ(older.git_sha, "cafe1234");
  EXPECT_EQ(older.config_schema, 7u);

  // Snapshots are handed over newest-first: generated_at must reorder them
  // so the 0.5x drop lands in the newest step and gets flagged.
  std::ostringstream report;
  const std::size_t flagged =
      write_trajectory_report({newer, older}, 0.70, report);
  EXPECT_EQ(flagged, 1u) << report.str();
  EXPECT_NE(report.str().find("REGRESSION intruder/PUNO 0.5x"),
            std::string::npos)
      << report.str();
  EXPECT_EQ(report.str().find("REGRESSION intruder/Baseline"),
            std::string::npos)
      << "0.99x is within threshold: " << report.str();

  // A flat trajectory passes.
  std::ostringstream flat;
  EXPECT_EQ(write_trajectory_report({older, older}, 0.70, flat), 0u);
}

TEST(Trajectory, MalformedSnapshotQuotesTheToken) {
  TempDir dir("badbench");
  write_file(dir.path / "bad.json", "{\"schema\":\"x\",\"runs\":[{oops}]}");
  BenchSnapshot snap;
  std::string err;
  EXPECT_FALSE(read_bench_snapshot(dir.path / "bad.json", snap, &err));
  EXPECT_NE(err.find("'"), std::string::npos) << err;
}

TEST(FleetDashboard, SelfContainedAndEscaped) {
  AggregateRow weird = sample_row("v7-x", "w<script>", "PU&NO");
  AggregateRow failed = sample_row("v7-y", "w<script>", "Baseline");
  failed.status = "failed";
  failed.has_result = false;
  failed.tile_heat.clear();
  std::ostringstream os;
  write_fleet_dashboard({weird, failed}, os);
  const std::string page = os.str();
  EXPECT_NE(page.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(page.find("<meta charset=\"utf-8\">"), std::string::npos);
  EXPECT_EQ(page.find("http://"), std::string::npos);
  EXPECT_EQ(page.find("https://"), std::string::npos);
  EXPECT_EQ(page.find("<script>"), std::string::npos)
      << "workload strings must be HTML-escaped";
  EXPECT_NE(page.find("w&lt;script&gt;"), std::string::npos);
  EXPECT_NE(page.find("PU&amp;NO"), std::string::npos);
  EXPECT_NE(page.find("<svg"), std::string::npos)
      << "rows with heat data get a thumbnail";
  EXPECT_NE(page.find("failed"), std::string::npos);
}

}  // namespace
}  // namespace puno::runner
