#include "runner/cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace puno::runner {
namespace {

namespace fs = std::filesystem;
using metrics::ExperimentParams;
using metrics::RunResult;

[[nodiscard]] fs::path fresh_dir(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

[[nodiscard]] RunResult sample_result() {
  RunResult r;
  r.workload = "intruder";
  r.scheme = Scheme::kPuno;
  r.completed = true;
  r.cycles = 123456789;
  r.commits = 4096;
  r.aborts = 512;
  r.aborts_by_getx = 300;
  r.aborts_by_gets = 200;
  r.aborts_overflow = 12;
  r.tx_getx_issued = 9999;
  r.tx_getx_nacked = 111;
  r.request_retries = 222;
  r.retries_per_contended_acquire = 3.125;
  r.false_abort_events = 77;
  r.falsely_aborted_txns = 99;
  r.false_abort_multiplicity = {0.0, 0.5, 0.25, 0.25};
  r.router_traversals = 987654321;
  r.dir_blocked_mean = 41.75;
  r.dir_txgetx_services = 888;
  r.good_cycles = 1000000;
  r.discarded_cycles = 250000;
  r.unicast_forwards = 333;
  r.mp_feedbacks = 21;
  r.notified_backoffs = 444;
  r.commit_hints_sent = 5;
  r.hint_wakeups = 3;
  return r;
}

TEST(CacheKey, StableForIdenticalParams) {
  ExperimentParams a, b;
  EXPECT_EQ(cache_key(a), cache_key(b));
  EXPECT_EQ(params_repr(a), params_repr(b));
}

// Regression for the old .puno-bench-cache key, which omitted max_cycles:
// an ablation changing only the cycle budget silently reused stale results.
TEST(CacheKey, DistinguishesMaxCycles) {
  ExperimentParams a, b;
  b.max_cycles = a.max_cycles + 1;
  EXPECT_NE(cache_key(a), cache_key(b));
}

TEST(CacheKey, DistinguishesEveryTopLevelParam) {
  const ExperimentParams base;
  ExperimentParams p = base;
  p.workload = "bayes";
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.scheme = Scheme::kPuno;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.seed = 17;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.scale = 0.5;
  EXPECT_NE(cache_key(base), cache_key(p));
}

// The old key also dropped most of SystemConfig; the hashed-full-config key
// must react to any knob that changes simulated behaviour.
TEST(CacheKey, DistinguishesSystemConfigFields) {
  const ExperimentParams base;
  ExperimentParams p = base;
  p.base_config.cache.l2_latency += 5;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.cache.memory_latency += 100;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.noc.vc_depth += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.htm.fixed_backoff += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.htm.requester_wins_max_retries += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.htm.limited_read_entries += 8;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.htm.limited_write_entries += 8;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.puno.timeout_fraction = 0.25;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.noc.mesh_height = 2;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.cache.l2_banks = 4;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.dir.sharer_rep = SharerRep::kCoarse;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.dir.coarse_region = 8;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.dir.limited_pointers = 8;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.dir.shards = 4;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.puno.enable_unicast = false;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.num_nodes = 64;
  p.base_config.noc.mesh_width = 8;
  EXPECT_NE(cache_key(base), cache_key(p));
}

// The traffic engine's knobs all change simulated behaviour for traffic-*
// workloads, so every TrafficConfig field must be keyed (the schema bump to
// v6 expired pre-traffic entries).
TEST(CacheKey, DistinguishesTrafficConfigFields) {
  const ExperimentParams base;
  ExperimentParams p = base;
  p.base_config.traffic.arrivals_per_node += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.zipf_theta = 1.1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.hot_keys = 32;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.phase_cycles = 10'000;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.arrival = ArrivalKind::kOnOff;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.rate_per_kcycle += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.burst_boost = 2.5;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.queue_capacity += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.placement = PlacementMode::kShuffle;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.keys_per_block += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.update_frac = 0.75;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.counter_blocks += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
  p = base;
  p.base_config.traffic.op_think_max += 1;
  EXPECT_NE(cache_key(base), cache_key(p));
}

TEST(ResultCache, MissOnEmptyDirectory) {
  const ResultCache cache(fresh_dir("puno-cache-miss"));
  EXPECT_FALSE(cache.load(ExperimentParams{}).has_value());
}

TEST(ResultCache, StoreLoadRoundTripPreservesEveryField) {
  const ResultCache cache(fresh_dir("puno-cache-roundtrip"));
  ExperimentParams p;
  p.workload = "intruder";
  p.scheme = Scheme::kPuno;
  const RunResult stored = sample_result();
  ASSERT_TRUE(cache.store(p, stored));

  const auto loaded = cache.load(p);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->workload, stored.workload);
  EXPECT_EQ(loaded->scheme, stored.scheme);
  EXPECT_EQ(loaded->completed, stored.completed);
  EXPECT_EQ(loaded->cycles, stored.cycles);
  EXPECT_EQ(loaded->commits, stored.commits);
  EXPECT_EQ(loaded->aborts, stored.aborts);
  EXPECT_EQ(loaded->aborts_by_getx, stored.aborts_by_getx);
  EXPECT_EQ(loaded->aborts_by_gets, stored.aborts_by_gets);
  EXPECT_EQ(loaded->aborts_overflow, stored.aborts_overflow);
  EXPECT_EQ(loaded->tx_getx_issued, stored.tx_getx_issued);
  EXPECT_EQ(loaded->tx_getx_nacked, stored.tx_getx_nacked);
  EXPECT_EQ(loaded->request_retries, stored.request_retries);
  EXPECT_EQ(loaded->retries_per_contended_acquire,
            stored.retries_per_contended_acquire);
  EXPECT_EQ(loaded->false_abort_events, stored.false_abort_events);
  EXPECT_EQ(loaded->falsely_aborted_txns, stored.falsely_aborted_txns);
  EXPECT_EQ(loaded->false_abort_multiplicity,
            stored.false_abort_multiplicity);
  EXPECT_EQ(loaded->router_traversals, stored.router_traversals);
  EXPECT_EQ(loaded->dir_blocked_mean, stored.dir_blocked_mean);
  EXPECT_EQ(loaded->dir_txgetx_services, stored.dir_txgetx_services);
  EXPECT_EQ(loaded->good_cycles, stored.good_cycles);
  EXPECT_EQ(loaded->discarded_cycles, stored.discarded_cycles);
  EXPECT_EQ(loaded->unicast_forwards, stored.unicast_forwards);
  EXPECT_EQ(loaded->mp_feedbacks, stored.mp_feedbacks);
  EXPECT_EQ(loaded->notified_backoffs, stored.notified_backoffs);
  EXPECT_EQ(loaded->commit_hints_sent, stored.commit_hints_sent);
  EXPECT_EQ(loaded->hint_wakeups, stored.hint_wakeups);
}

TEST(ResultCache, StoreLeavesNoTempFiles) {
  const fs::path dir = fresh_dir("puno-cache-atomic");
  const ResultCache cache(dir);
  ASSERT_TRUE(cache.store(ExperimentParams{}, sample_result()));
  std::size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".json")
        << "unexpected leftover: " << entry.path();
  }
  EXPECT_EQ(files, 1u);
}

TEST(ResultCache, CorruptEntryIsAMiss) {
  const ResultCache cache(fresh_dir("puno-cache-corrupt"));
  const ExperimentParams p;
  {
    fs::create_directories(cache.dir());
    std::ofstream out(cache.entry_path(p));
    out << "half-written garbage";
  }
  EXPECT_FALSE(cache.load(p).has_value());
}

// A colliding key (same hash, different params) must be rejected by the
// header's full params rendering, not served as a hit.
TEST(ResultCache, MismatchedParamsHeaderIsAMiss) {
  const ResultCache cache(fresh_dir("puno-cache-collision"));
  ExperimentParams stored_params;
  stored_params.seed = 1;
  ASSERT_TRUE(cache.store(stored_params, sample_result()));

  ExperimentParams other;
  other.seed = 2;
  // Simulate a hash collision by copying the seed-1 entry onto seed-2's key.
  fs::copy_file(cache.entry_path(stored_params), cache.entry_path(other));
  EXPECT_FALSE(cache.load(other).has_value());
}

TEST(ResultCache, OverwriteReplacesEntry) {
  const ResultCache cache(fresh_dir("puno-cache-overwrite"));
  const ExperimentParams p;
  RunResult first = sample_result();
  first.commits = 1;
  RunResult second = sample_result();
  second.commits = 2;
  ASSERT_TRUE(cache.store(p, first));
  ASSERT_TRUE(cache.store(p, second));
  const auto loaded = cache.load(p);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->commits, 2u);
}

}  // namespace
}  // namespace puno::runner
