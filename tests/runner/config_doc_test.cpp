// docs/CONFIG.md completeness: the reference table must name every
// overridable config knob and every cache-key field.
//
// The doc is hand-written; these checks make it impossible to add a knob
// to the --set registry (runner::override_keys) or to the result-cache key
// (runner::params_repr) without also documenting it — the test fails with
// the missing key's name.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "metrics/experiment.hpp"
#include "runner/cache.hpp"
#include "runner/grid.hpp"

#ifndef PUNO_DOCS_DIR
#error "config_doc_test must be compiled with -DPUNO_DOCS_DIR=..."
#endif

namespace puno::runner {
namespace {

[[nodiscard]] std::string read_config_doc() {
  const std::filesystem::path path =
      std::filesystem::path(PUNO_DOCS_DIR) / "CONFIG.md";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(ConfigDoc, DocumentsEveryOverridableKey) {
  const std::string doc = read_config_doc();
  ASSERT_FALSE(doc.empty());
  for (const std::string& key : override_keys()) {
    EXPECT_NE(doc.find("`" + key + "`"), std::string::npos)
        << "docs/CONFIG.md is missing --set key `" << key << "`";
  }
}

TEST(ConfigDoc, DocumentsEveryCacheKeyField) {
  const std::string doc = read_config_doc();
  ASSERT_FALSE(doc.empty());
  // params_repr renders "name=value" tokens separated by spaces; every
  // field name participating in the cache key must appear in the doc.
  const std::string repr = params_repr(metrics::ExperimentParams{});
  std::istringstream tokens(repr);
  std::string tok;
  while (tokens >> tok) {
    const std::size_t eq = tok.find('=');
    ASSERT_NE(eq, std::string::npos) << tok;
    const std::string name = tok.substr(0, eq);
    EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
        << "docs/CONFIG.md is missing cache-key field `" << name << "`";
  }
}

}  // namespace
}  // namespace puno::runner
