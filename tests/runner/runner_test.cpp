#include "runner/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <iterator>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/stats_io.hpp"
#include "runner/cache.hpp"
#include "runner/grid.hpp"
#include "runner/suite.hpp"
#include "workloads/stamp.hpp"

namespace puno::runner {
namespace {

using metrics::RunResult;

// Tiny real-simulation grid: 2 workloads x 2 schemes x 2 seeds at 5% scale.
[[nodiscard]] std::vector<JobSpec> tiny_grid() {
  GridSpec grid;
  grid.workloads = {"kmeans", "ssca2"};
  grid.schemes = {Scheme::kBaseline, Scheme::kPuno};
  grid.seeds = {1, 2};
  grid.scale = 0.05;
  return expand_grid(grid);
}

[[nodiscard]] std::string results_csv(const SweepResult& sweep) {
  std::vector<RunResult> results;
  results.reserve(sweep.outcomes.size());
  for (const JobOutcome& o : sweep.outcomes) results.push_back(o.result);
  std::ostringstream out;
  metrics::write_results_csv(results, out);
  return out.str();
}

// The central determinism contract: sharding the same specs over 8 worker
// threads must produce byte-identical results, in input order, to a serial
// run. Each simulation owns its kernel/RNG/stats, so the interleaving of
// jobs across threads must be unobservable in the output.
TEST(Runner, ParallelSweepBitIdenticalToSerial) {
  const std::vector<JobSpec> specs = tiny_grid();

  RunnerOptions serial;
  serial.jobs = 1;
  const SweepResult a = run_jobs(specs, serial);

  RunnerOptions parallel;
  parallel.jobs = 8;
  const SweepResult b = run_jobs(specs, parallel);

  ASSERT_EQ(a.outcomes.size(), specs.size());
  ASSERT_EQ(b.outcomes.size(), specs.size());
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  EXPECT_EQ(results_csv(a), results_csv(b))
      << "jobs=8 sweep must be byte-identical to jobs=1";
}

TEST(Runner, ResolveJobsPrefersExplicitRequest) {
  EXPECT_EQ(resolve_jobs(3), 3u);
  EXPECT_GE(resolve_jobs(0), 1u);
}

// A job that throws once is retried and succeeds on the second attempt;
// a job that always throws is reported failed without poisoning siblings.
TEST(Runner, FaultInjectionRetriesThenIsolatesFailures) {
  constexpr std::size_t kJobs = 6;
  constexpr std::size_t kFlaky = 2;   // fails on its first attempt only
  constexpr std::size_t kBroken = 4;  // fails on every attempt

  std::vector<JobSpec> specs(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    specs[i].params.workload = "job" + std::to_string(i);
    specs[i].params.seed = i;
  }

  std::atomic<int> flaky_attempts{0};
  const JobFn fn = [&](const JobSpec& spec) -> RunResult {
    const auto index = spec.params.seed;
    if (index == kFlaky && flaky_attempts.fetch_add(1) == 0) {
      throw std::runtime_error("transient fault");
    }
    if (index == kBroken) {
      throw std::runtime_error("persistent fault");
    }
    RunResult r;
    r.workload = spec.params.workload;
    r.completed = true;
    r.commits = 100 + index;
    return r;
  };

  RunnerOptions options;
  options.jobs = 4;
  const SweepResult sweep = run_jobs(specs, options, fn);

  ASSERT_EQ(sweep.outcomes.size(), kJobs);
  EXPECT_EQ(sweep.failed, 1u);

  const JobOutcome& flaky = sweep.outcomes[kFlaky];
  EXPECT_EQ(flaky.status, JobStatus::kOk);
  EXPECT_EQ(flaky.attempts, 2);
  EXPECT_EQ(flaky.result.commits, 100 + kFlaky);

  const JobOutcome& broken = sweep.outcomes[kBroken];
  EXPECT_EQ(broken.status, JobStatus::kFailed);
  EXPECT_EQ(broken.attempts, 2);
  EXPECT_NE(broken.error.find("persistent fault"), std::string::npos);
  // Failed rows keep their identity so downstream tables stay aligned.
  EXPECT_EQ(broken.result.workload, "job4");
  EXPECT_FALSE(broken.result.completed);

  for (std::size_t i = 0; i < kJobs; ++i) {
    if (i == kBroken) continue;
    EXPECT_EQ(sweep.outcomes[i].status, JobStatus::kOk)
        << "sibling job " << i << " must be unaffected by the failure";
    EXPECT_EQ(sweep.outcomes[i].result.commits, 100 + i);
  }
}

TEST(Runner, CacheHitSkipsSimulation) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "puno-runner-cache";
  std::filesystem::remove_all(dir);
  const ResultCache cache(dir);

  std::vector<JobSpec> specs(2);
  specs[0].params.workload = "alpha";
  specs[1].params.workload = "beta";

  std::atomic<int> invocations{0};
  const JobFn fn = [&](const JobSpec& spec) -> RunResult {
    invocations.fetch_add(1);
    RunResult r;
    r.workload = spec.params.workload;
    r.completed = true;
    r.cycles = 42;
    return r;
  };

  RunnerOptions options;
  options.jobs = 1;
  options.cache = &cache;

  const SweepResult first = run_jobs(specs, options, fn);
  EXPECT_EQ(invocations.load(), 2);
  EXPECT_EQ(first.simulated, 2u);
  EXPECT_EQ(first.cached, 0u);

  const SweepResult second = run_jobs(specs, options, fn);
  EXPECT_EQ(invocations.load(), 2) << "cache hits must not re-simulate";
  EXPECT_EQ(second.simulated, 0u);
  EXPECT_EQ(second.cached, 2u);
  for (const JobOutcome& o : second.outcomes) {
    EXPECT_EQ(o.status, JobStatus::kCached);
    EXPECT_EQ(o.result.cycles, 42u);
  }
}

TEST(Runner, FailedJobsAreNotCached) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "puno-runner-failcache";
  std::filesystem::remove_all(dir);
  const ResultCache cache(dir);

  std::vector<JobSpec> specs(1);
  specs[0].params.workload = "doomed";

  std::atomic<int> invocations{0};
  const JobFn fn = [&](const JobSpec&) -> RunResult {
    invocations.fetch_add(1);
    throw std::runtime_error("boom");
  };

  RunnerOptions options;
  options.jobs = 1;
  options.cache = &cache;

  const SweepResult first = run_jobs(specs, options, fn);
  EXPECT_EQ(first.failed, 1u);
  EXPECT_EQ(invocations.load(), 2);  // one run + one retry

  const SweepResult second = run_jobs(specs, options, fn);
  EXPECT_EQ(second.failed, 1u);
  EXPECT_EQ(invocations.load(), 4) << "a failure must not be served from cache";
}

// The wall-clock watchdog catches runaway simulations even when max_cycles
// alone would let them run for minutes.
TEST(Runner, WatchdogKillsRunawayJob) {
  std::vector<JobSpec> specs(1);
  specs[0].params.workload = "intruder";
  specs[0].params.scheme = Scheme::kBaseline;
  specs[0].params.scale = 50.0;  // quota far beyond what 0.05s can simulate
  specs[0].params.max_cycles = 1'000'000'000'000ull;

  RunnerOptions options;
  options.jobs = 1;
  options.watchdog_seconds = 0.05;
  const SweepResult sweep = run_jobs(specs, options);

  ASSERT_EQ(sweep.outcomes.size(), 1u);
  const JobOutcome& o = sweep.outcomes[0];
  EXPECT_EQ(o.status, JobStatus::kFailed);
  EXPECT_NE(o.error.find("watchdog"), std::string::npos) << o.error;
  EXPECT_EQ(o.attempts, 1) << "watchdog expiry must not be retried";
}

TEST(Runner, ManifestHasOneLinePerJob) {
  const std::filesystem::path manifest =
      std::filesystem::path(::testing::TempDir()) / "puno-runner-manifest.jsonl";
  std::filesystem::remove(manifest);

  std::vector<JobSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].params.workload = "w" + std::to_string(i);
  }
  const JobFn fn = [](const JobSpec& spec) {
    RunResult r;
    r.workload = spec.params.workload;
    r.completed = true;
    return r;
  };

  RunnerOptions options;
  options.jobs = 2;
  options.manifest_path = manifest.string();
  const SweepResult sweep = run_jobs(specs, options, fn);
  EXPECT_EQ(sweep.failed, 0u);

  std::ifstream in(manifest);
  ASSERT_TRUE(in.is_open());
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"status\""), std::string::npos);
  }
  EXPECT_EQ(lines, specs.size());
}

// run_suite/run_comparison moved onto the runner: same shape as before,
// one row per STAMP benchmark in paper order.
TEST(RunnerSuite, SuiteHasOneRowPerBenchmarkInOrder) {
  SuiteOptions options;
  options.scale = 0.05;
  options.jobs = 4;
  const std::vector<RunResult> suite =
      run_suite(Scheme::kBaseline, /*seed=*/1, options);
  const auto names = workloads::stamp::benchmark_names();
  ASSERT_EQ(suite.size(), names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(suite[i].workload, names[i]);
    EXPECT_EQ(suite[i].scheme, Scheme::kBaseline);
  }
}

TEST(Grid, ExpandsCrossProductWithOverrides) {
  GridSpec grid;
  grid.workloads = {"kmeans"};
  grid.schemes = {Scheme::kBaseline, Scheme::kPuno};
  grid.seeds = {1, 2, 3};
  OverrideAxis axis;
  axis.key = "htm.fixed_backoff";
  axis.values = {"16", "64"};
  grid.overrides.push_back(axis);

  const std::vector<JobSpec> specs = expand_grid(grid);
  ASSERT_EQ(specs.size(), 1u * 2u * 3u * 2u);
  bool saw_16 = false, saw_64 = false;
  for (const JobSpec& s : specs) {
    saw_16 |= s.params.base_config.htm.fixed_backoff == 16;
    saw_64 |= s.params.base_config.htm.fixed_backoff == 64;
    EXPECT_NE(s.label.find("htm.fixed_backoff="), std::string::npos);
  }
  EXPECT_TRUE(saw_16);
  EXPECT_TRUE(saw_64);
}

TEST(Grid, RejectsUnknownWorkloadAndKey) {
  GridSpec grid;
  grid.workloads = {"no-such-benchmark"};
  grid.schemes = {Scheme::kBaseline};
  EXPECT_THROW(expand_grid(grid), std::invalid_argument);

  grid.workloads = {"kmeans"};
  OverrideAxis axis;
  axis.key = "htm.no_such_knob";
  axis.values = {"1"};
  grid.overrides.push_back(axis);
  EXPECT_THROW(expand_grid(grid), std::invalid_argument);
}

TEST(Grid, WorkloadListParsing) {
  // "all" keeps its historical meaning (the 8 STAMP profiles — the perf
  // baseline depends on it); "traffic" adds the open-loop kernels and the
  // groups compose.
  const auto stamp_names = workloads::stamp::benchmark_names();
  EXPECT_EQ(parse_workload_list("all"), stamp_names);
  const auto traffic = parse_workload_list("traffic");
  ASSERT_EQ(traffic.size(), 4u);
  for (const std::string& name : traffic) {
    EXPECT_EQ(name.rfind("traffic-", 0), 0u);
  }
  const auto composed = parse_workload_list("all,traffic");
  EXPECT_EQ(composed.size(), stamp_names.size() + 4);
  const auto mixed = parse_workload_list("kmeans,traffic-queue");
  EXPECT_EQ(mixed,
            (std::vector<std::string>{"kmeans", "traffic-queue"}));
  EXPECT_THROW(parse_workload_list("traffic-heap"), std::invalid_argument);
}

TEST(Grid, TrafficOverridesFlowIntoJobSpecs) {
  GridSpec grid;
  grid.workloads = {"traffic-queue"};
  grid.schemes = {Scheme::kBaseline};
  grid.seeds = {1};
  OverrideAxis theta;
  theta.key = "traffic.zipf_theta";
  theta.values = {"0.5", "1.1"};
  grid.overrides.push_back(theta);
  OverrideAxis placement;
  placement.key = "traffic.placement";
  placement.values = {"shuffle"};
  grid.overrides.push_back(placement);

  const std::vector<JobSpec> specs = expand_grid(grid);
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_DOUBLE_EQ(specs[0].params.base_config.traffic.zipf_theta, 0.5);
  EXPECT_DOUBLE_EQ(specs[1].params.base_config.traffic.zipf_theta, 1.1);
  for (const JobSpec& s : specs) {
    EXPECT_EQ(s.params.base_config.traffic.placement,
              PlacementMode::kShuffle);
  }
  // Bad enum values are rejected at expansion, not at run time.
  OverrideAxis bad;
  bad.key = "traffic.arrival";
  bad.values = {"sometimes"};
  grid.overrides.push_back(bad);
  EXPECT_THROW(expand_grid(grid), std::invalid_argument);
}

// The open-loop engine inside the parallel runner: per-job workload
// construction keeps the determinism contract, so jobs=8 stays
// byte-identical to jobs=1 with traffic workloads in the mix.
TEST(Runner, TrafficSweepBitIdenticalAcrossJobCounts) {
  GridSpec grid;
  grid.workloads = {"traffic-map", "traffic-queue"};
  grid.schemes = {Scheme::kBaseline, Scheme::kPuno};
  grid.seeds = {1, 2};
  grid.scale = 0.1;  // 51 arrivals per core
  const std::vector<JobSpec> specs = expand_grid(grid);

  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 8;
  const SweepResult a = run_jobs(specs, serial);
  const SweepResult b = run_jobs(specs, parallel);
  EXPECT_EQ(a.failed, 0u);
  EXPECT_EQ(b.failed, 0u);
  EXPECT_EQ(results_csv(a), results_csv(b));
  // Traffic rows actually carry the open-loop columns.
  bool saw_offered = false;
  for (const JobOutcome& o : a.outcomes) {
    saw_offered |= o.result.offered_txns > 0;
  }
  EXPECT_TRUE(saw_offered);
}

TEST(Grid, SeedListParsing) {
  EXPECT_EQ(parse_seed_list("1,2,9"), (std::vector<std::uint64_t>{1, 2, 9}));
  EXPECT_EQ(parse_seed_list("3..6"), (std::vector<std::uint64_t>{3, 4, 5, 6}));
  EXPECT_THROW(parse_seed_list("8..3"), std::invalid_argument);
  EXPECT_THROW(parse_seed_list("abc"), std::invalid_argument);
}

TEST(Grid, SchemeListParsing) {
  // "all" tracks the scheme registry: every value in kAllSchemes, in order.
  const auto all = parse_scheme_list("all");
  ASSERT_EQ(all.size(), std::size(kAllSchemes));
  EXPECT_TRUE(std::equal(all.begin(), all.end(), std::begin(kAllSchemes)));
  const auto two = parse_scheme_list("baseline,reqwins");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], Scheme::kBaseline);
  EXPECT_EQ(two[1], Scheme::kRequesterWins);
  const auto legacy = parse_scheme_list("baseline,puno");
  ASSERT_EQ(legacy.size(), 2u);
  EXPECT_EQ(legacy[0], Scheme::kBaseline);
  EXPECT_EQ(legacy[1], Scheme::kPuno);
  EXPECT_THROW(parse_scheme_list("hope"), std::invalid_argument);
}

}  // namespace
}  // namespace puno::runner
