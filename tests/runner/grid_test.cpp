// Config-override grid: the --set key registry and the mesh-shape coupling.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "runner/grid.hpp"
#include "sim/config.hpp"

namespace puno::runner {
namespace {

TEST(ApplyOverride, NumNodesDerivesSquareMesh) {
  SystemConfig cfg;
  ASSERT_TRUE(apply_override(cfg, "num_nodes", "64"));
  EXPECT_EQ(cfg.num_nodes, 64u);
  EXPECT_EQ(cfg.noc.mesh_width, 8u);
  EXPECT_EQ(cfg.noc.rows(), 8u);
  EXPECT_EQ(validate(cfg), std::nullopt);

  ASSERT_TRUE(apply_override(cfg, "num_nodes", "1024"));
  EXPECT_EQ(cfg.noc.mesh_width, 32u);
  EXPECT_EQ(validate(cfg), std::nullopt);
}

TEST(ApplyOverride, NumNodesDerivesMostSquareRectangle) {
  SystemConfig cfg;
  ASSERT_TRUE(apply_override(cfg, "num_nodes", "32"));
  EXPECT_EQ(cfg.noc.mesh_width, 8u);
  EXPECT_EQ(cfg.noc.rows(), 4u);
  EXPECT_EQ(validate(cfg), std::nullopt);

  // A prime count degenerates to a 1-row mesh but stays valid.
  ASSERT_TRUE(apply_override(cfg, "num_nodes", "7"));
  EXPECT_EQ(cfg.noc.mesh_width, 7u);
  EXPECT_EQ(cfg.noc.rows(), 1u);
  EXPECT_EQ(validate(cfg), std::nullopt);
}

TEST(ApplyOverride, MeshDimensionsRecomputeNodeCount) {
  SystemConfig cfg;
  ASSERT_TRUE(apply_override(cfg, "noc.mesh_width", "8"));
  EXPECT_EQ(cfg.num_nodes, 64u);  // height 0 = square
  ASSERT_TRUE(apply_override(cfg, "noc.mesh_height", "4"));
  EXPECT_EQ(cfg.num_nodes, 32u);
  EXPECT_EQ(validate(cfg), std::nullopt);
  // Back to square.
  ASSERT_TRUE(apply_override(cfg, "noc.mesh_height", "0"));
  EXPECT_EQ(cfg.num_nodes, 64u);
}

TEST(ApplyOverride, DirectoryKnobs) {
  SystemConfig cfg;
  ASSERT_TRUE(apply_override(cfg, "dir.sharer_rep", "coarse"));
  EXPECT_EQ(cfg.dir.sharer_rep, SharerRep::kCoarse);
  ASSERT_TRUE(apply_override(cfg, "dir.sharer_rep", "limited"));
  EXPECT_EQ(cfg.dir.sharer_rep, SharerRep::kLimited);
  ASSERT_TRUE(apply_override(cfg, "dir.sharer_rep", "full"));
  EXPECT_EQ(cfg.dir.sharer_rep, SharerRep::kFull);
  EXPECT_FALSE(apply_override(cfg, "dir.sharer_rep", "nonesuch"));

  ASSERT_TRUE(apply_override(cfg, "dir.coarse_region", "8"));
  EXPECT_EQ(cfg.dir.coarse_region, 8u);
  ASSERT_TRUE(apply_override(cfg, "dir.limited_pointers", "8"));
  EXPECT_EQ(cfg.dir.limited_pointers, 8u);
  ASSERT_TRUE(apply_override(cfg, "dir.shards", "4"));
  EXPECT_EQ(cfg.dir.shards, 4u);
  ASSERT_TRUE(apply_override(cfg, "cache.l2_banks", "4"));
  EXPECT_EQ(cfg.cache.l2_banks, 4u);
}

TEST(OverrideKeys, NewScalingKnobsAreRegistered) {
  const auto& keys = override_keys();
  for (const char* key :
       {"num_nodes", "noc.mesh_width", "noc.mesh_height", "cache.l2_banks",
        "dir.sharer_rep", "dir.coarse_region", "dir.limited_pointers",
        "dir.shards", "puno.pbuffer_entries"}) {
    EXPECT_NE(std::find(keys.begin(), keys.end(), std::string(key)),
              keys.end())
        << key << " missing from --set registry";
  }
}

}  // namespace
}  // namespace puno::runner
