// Representation differential: at 16 nodes, a losslessly-configured coarse
// or limited sharer set must be bit-identical to the full bit-vector.
//
// kCoarse with coarse_region = 1 and kLimited with limited_pointers = 16
// represent every 16-node sharer set exactly, so the simulation must not
// be able to tell the representations apart: same cycle counts, same abort
// counts, same router traversals, for every seed. This is the cheap,
// always-on guarantee that the SharerSet refactor only changes behaviour
// when a representation actually loses information — any divergence here
// means representation state leaked into the protocol.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "sim/config.hpp"

namespace puno {
namespace {

constexpr std::uint32_t kNumSeeds = 32;

/// 32-seed JSONL transcript, exactly the golden ResultJsonl recipe but with
/// a configurable sharer representation.
[[nodiscard]] std::string transcript(SharerRep rep) {
  static const char* kWorkloads[] = {"genome", "intruder", "kmeans", "ssca2"};
  std::ostringstream out;
  for (std::uint32_t seed = 1; seed <= kNumSeeds; ++seed) {
    metrics::ExperimentParams p;
    p.workload = kWorkloads[seed % 4];
    p.scheme = Scheme::kPuno;
    p.seed = seed;
    p.scale = 0.02;
    p.base_config.dir.sharer_rep = rep;
    p.base_config.dir.coarse_region = 1;        // lossless at any size
    p.base_config.dir.limited_pointers = 16;    // lossless at 16 nodes
    metrics::write_result_jsonl(metrics::run_experiment(p), out);
  }
  return out.str();
}

void expect_identical(const std::string& a, const std::string& b,
                      const char* what) {
  if (a == b) return;
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  std::size_t line = 1;
  while (std::getline(sa, la) && std::getline(sb, lb)) {
    ASSERT_EQ(la, lb) << what << " diverges at line " << line;
    ++line;
  }
  FAIL() << what << " transcripts differ in length";
}

TEST(SharerRepDifferential, LosslessRepsAreBitIdenticalAt16Nodes) {
  const std::string full = transcript(SharerRep::kFull);
  expect_identical(full, transcript(SharerRep::kCoarse), "coarse(region=1)");
  expect_identical(full, transcript(SharerRep::kLimited),
                   "limited(pointers=16)");
}

}  // namespace
}  // namespace puno
