// Forward-progress properties under pathological contention: the time-based
// conflict-resolution policy (retained timestamps) must guarantee that the
// system never livelocks, even when every core hammers the same block.
#include <gtest/gtest.h>

#include <optional>

#include "arch/cmp.hpp"
#include "workloads/workload.hpp"

namespace puno::arch {
namespace {

/// Worst-case workload: every transaction on every core RMWs the same
/// single block, forever conflicting with everyone.
class SingleBlockWorkload final : public workloads::Workload {
 public:
  explicit SingleBlockWorkload(std::uint32_t per_node) : quota_(per_node) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<workloads::TxnDesc> next(NodeId node) override {
    if (issued_[node] >= quota_) return std::nullopt;
    ++issued_[node];
    workloads::TxnDesc d;
    d.static_id = 0;
    d.pre_think = 5;
    d.post_think = 5;
    d.ops.push_back({false, 0x0, 1, 2});  // load the block
    d.ops.push_back({true, 0x0, 2, 2});   // store it
    return d;
  }

 private:
  std::string name_ = "single-block";
  std::uint32_t quota_;
  std::uint32_t issued_[64] = {};
};

class ProgressTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(ProgressTest, SingleBlockHammerCompletes) {
  SystemConfig cfg;
  cfg.scheme = GetParam();
  cfg.seed = 3;
  SingleBlockWorkload wl(24);
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(20'000'000))
      << "livelock: total serialization must still finish";
  EXPECT_EQ(cmp.total_committed(), 24u * cfg.num_nodes);
}

TEST_P(ProgressTest, CommitCountGrowsMonotonically) {
  SystemConfig cfg;
  cfg.scheme = GetParam();
  cfg.seed = 4;
  SingleBlockWorkload wl(16);
  Cmp cmp(cfg, wl);

  // Probe every 5000 cycles: between consecutive windows at least one new
  // commit must land somewhere (the oldest transaction always wins).
  std::uint64_t last = 0;
  Cycle last_change = 0;
  bool stalled = false;
  std::function<void()> probe = [&] {
    const std::uint64_t now_commits =
        cmp.kernel().stats().counter("htm.commits").value();
    if (now_commits != last) {
      last = now_commits;
      last_change = cmp.kernel().now();
    } else if (cmp.kernel().now() - last_change > 100000 && !cmp.all_done()) {
      stalled = true;
    }
    if (!cmp.all_done()) cmp.kernel().schedule(5000, probe);
  };
  cmp.kernel().schedule(5000, probe);
  ASSERT_TRUE(cmp.run(20'000'000));
  EXPECT_FALSE(stalled) << "no 100k-cycle window without a commit";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, ProgressTest,
                         ::testing::ValuesIn(kAllSchemes),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace puno::arch
