// Scale smoke: whole-CMP runs past the paper's 16 tiles, under the
// protocol invariant oracle.
//
// The paper's machine is a 4x4 mesh; the scale study (docs/SCALING.md)
// runs the same protocol at 64, 256 and 1024 tiles. These smokes pin the
// property the study relies on: the protocol stays invariant-clean and
// drains at every size, for each sharer-set representation the directory
// can be configured with. Labeled scale_smoke (own CI step); the runs are
// deliberately small — a handful of transactions per core — so the whole
// binary stays in smoke-test territory.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "check/fuzz.hpp"
#include "check/invariants.hpp"
#include "sim/config.hpp"
#include "workloads/synthetic.hpp"

namespace puno {
namespace {

[[nodiscard]] SystemConfig scale_config(std::uint32_t width, Scheme scheme) {
  SystemConfig cfg;
  cfg.num_nodes = width * width;
  cfg.noc.mesh_width = width;
  cfg.scheme = scheme;
  cfg.seed = 42;
  return cfg;
}

[[nodiscard]] workloads::SyntheticSpec scale_spec(std::uint32_t txns,
                                                  std::uint32_t num_nodes) {
  workloads::SyntheticSpec spec;
  spec.name = "scale-smoke";
  spec.txns_per_node = txns;
  spec.hot_blocks = 32;
  // Per-anchor contention stays constant across machine sizes (total
  // transactions grow with the node count, so a fixed anchor pool would
  // serialize the whole machine and drain time would grow linearly).
  spec.anchor_blocks = std::max<std::uint32_t>(4, num_nodes / 16);
  spec.shared_blocks = 2048;
  spec.private_blocks_per_node = 32;
  // One contended site (anchor write + hot reads) keeps sharer sets and
  // NACK chains exercised even at a few transactions per core.
  workloads::StaticTxnSpec site;
  site.reads_min = 2;
  site.reads_max = 6;
  site.writes_min = 1;
  site.writes_max = 2;
  site.anchor_reads = 1;
  site.anchor_writes = 1;
  spec.txns.push_back(site);
  return spec;
}

struct ScaleCase {
  std::uint32_t width;
  Scheme scheme;
  SharerRep rep;
};

class ScaleSmoke : public ::testing::TestWithParam<ScaleCase> {};

TEST_P(ScaleSmoke, DrainsInvariantClean) {
  const ScaleCase sc = GetParam();
  SystemConfig cfg = scale_config(sc.width, sc.scheme);
  cfg.dir.sharer_rep = sc.rep;
  cfg.dir.coarse_region = 4;
  cfg.dir.limited_pointers = 4;
  ASSERT_EQ(validate(cfg), std::nullopt);

  check::CheckerConfig checker;  // all invariants on
  // One sweep reads O(machine state), which itself grows with the tile
  // count; sweeping every 16*num_nodes cycles keeps the oracle's share of
  // the run roughly constant across sizes instead of quadratic.
  checker.stride = 16 * cfg.num_nodes;
  const auto outcome =
      check::run_one(cfg, scale_spec(4, cfg.num_nodes), checker, 4'000'000);
  EXPECT_TRUE(outcome.completed) << "did not drain by the cycle cap";
  EXPECT_TRUE(outcome.violations.empty())
      << outcome.violations.size() << " invariant violations, first: "
      << (outcome.violations.empty() ? ""
                                     : outcome.violations.front().detail);
  EXPECT_EQ(outcome.total_committed,
            std::uint64_t{cfg.num_nodes} * 4);
}

INSTANTIATE_TEST_SUITE_P(
    Meshes, ScaleSmoke,
    ::testing::Values(ScaleCase{8, Scheme::kPuno, SharerRep::kFull},
                      ScaleCase{8, Scheme::kBaseline, SharerRep::kCoarse},
                      ScaleCase{8, Scheme::kPuno, SharerRep::kLimited},
                      ScaleCase{16, Scheme::kPuno, SharerRep::kFull},
                      ScaleCase{16, Scheme::kBaseline, SharerRep::kLimited}),
    [](const auto& info) {
      const ScaleCase& sc = info.param;
      std::string name = std::to_string(sc.width * sc.width);
      name += "t_";
      name += sc.scheme == Scheme::kPuno ? "puno" : "baseline";
      name += "_";
      name += to_string(sc.rep);
      return name;
    });

// The acceptance size: a 1024-tile (32x32) run completes under the oracle.
// One transaction per core and a coarser checker stride keep it smoke-sized.
TEST(ScaleSmoke, ThousandTileRunCompletes) {
  SystemConfig cfg = scale_config(32, Scheme::kPuno);
  cfg.dir.sharer_rep = SharerRep::kLimited;  // realistic hardware at 1024
  cfg.dir.limited_pointers = 8;
  ASSERT_EQ(validate(cfg), std::nullopt);

  check::CheckerConfig checker;
  checker.stride = 16 * cfg.num_nodes;  // see DrainsInvariantClean
  const auto outcome =
      check::run_one(cfg, scale_spec(1, cfg.num_nodes), checker, 8'000'000);
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.violations.empty());
  EXPECT_EQ(outcome.total_committed, 1024u);
}

// Non-square meshes are first-class: an 8x4 CMP runs clean end to end.
TEST(ScaleSmoke, NonSquareMeshRuns) {
  SystemConfig cfg;
  cfg.num_nodes = 32;
  cfg.noc.mesh_width = 8;
  cfg.noc.mesh_height = 4;
  cfg.scheme = Scheme::kPuno;
  ASSERT_EQ(validate(cfg), std::nullopt);

  const auto outcome = check::run_one(cfg, scale_spec(4, cfg.num_nodes),
                                      check::CheckerConfig{}, 2'000'000);
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.violations.empty());
  EXPECT_EQ(outcome.total_committed, 32u * 4);
}

}  // namespace
}  // namespace puno
