// Directional expectations from the paper's evaluation, checked at reduced
// scale: PUNO must cut false aborting, aborts and traffic in high-contention
// workloads; the RMW predictor must help the low-contention RMW kernels.
#include <gtest/gtest.h>

#include <map>

#include "metrics/experiment.hpp"
#include "puno/puno_directory.hpp"
#include "workloads/stamp.hpp"

namespace puno::metrics {
namespace {

/// Full-scale runs are memoized: several directional tests compare the same
/// (workload, scheme) pairs, and reduced-scale runs are too noisy for
/// margin-based expectations.
const RunResult& run(const std::string& w, Scheme s, double scale = 1.0) {
  static std::map<std::string, RunResult> cache;
  const std::string key =
      w + "/" + to_string(s) + "/" + std::to_string(scale);
  auto it = cache.find(key);
  if (it == cache.end()) {
    ExperimentParams p;
    p.workload = w;
    p.scheme = s;
    p.seed = 1;
    p.scale = scale;
    it = cache.emplace(key, run_experiment(p)).first;
  }
  return it->second;
}

class HighContentionScheme : public ::testing::TestWithParam<std::string> {};

TEST_P(HighContentionScheme, PunoReducesFalseAbortEvents) {
  const auto base = run(GetParam(), Scheme::kBaseline);
  const auto puno = run(GetParam(), Scheme::kPuno);
  ASSERT_GT(base.false_abort_events, 0u);
  EXPECT_LT(puno.false_abort_events, base.false_abort_events * 3 / 4)
      << "PUNO's raison d'etre: false aborting must drop sharply";
}

TEST_P(HighContentionScheme, PunoReducesAborts) {
  const auto base = run(GetParam(), Scheme::kBaseline);
  const auto puno = run(GetParam(), Scheme::kPuno);
  EXPECT_LT(puno.aborts, base.aborts);
}

TEST_P(HighContentionScheme, PunoReducesNetworkTraffic) {
  const auto base = run(GetParam(), Scheme::kBaseline);
  const auto puno = run(GetParam(), Scheme::kPuno);
  EXPECT_LT(puno.router_traversals, base.router_traversals);
}

TEST_P(HighContentionScheme, PunoDoesNotDegradeGdRatio) {
  // The paper's Figure 14 shows PUNO's G/D ratio above the baseline on
  // average; per-workload, labyrinth's enormous read-sharing makes the
  // margin thin, so the per-workload requirement is "not worse".
  const auto& base = run(GetParam(), Scheme::kBaseline);
  const auto& puno = run(GetParam(), Scheme::kPuno);
  EXPECT_GT(puno.gd_ratio(), base.gd_ratio() * 0.95);
}

TEST(SchemeBehaviour, PunoImprovesAverageGdRatio) {
  double base_acc = 0.0, puno_acc = 0.0;
  for (const char* w : {"bayes", "intruder", "labyrinth", "yada"}) {
    base_acc += run(w, Scheme::kBaseline).gd_ratio();
    puno_acc += run(w, Scheme::kPuno).gd_ratio();
  }
  EXPECT_GT(puno_acc, base_acc);
}

TEST_P(HighContentionScheme, BaselineAbortsAreGetxDominated) {
  // Section I: 92% of transaction aborts are caused by transactional GETX.
  const auto base = run(GetParam(), Scheme::kBaseline);
  ASSERT_GT(base.aborts, 0u);
  EXPECT_GT(static_cast<double>(base.aborts_by_getx) /
                static_cast<double>(base.aborts),
            0.5);
}

INSTANTIATE_TEST_SUITE_P(HighContention, HighContentionScheme,
                         ::testing::Values("bayes", "intruder", "labyrinth",
                                           "yada"),
                         [](const auto& info) { return info.param; });

TEST(SchemeBehaviour, UnicastNeverSucceedsAndNeverAborts) {
  // Every PUNO unicast must resolve to a NACK (predicted or conservative);
  // the run completing at all shows misprediction handling is sound.
  const auto puno = run("intruder", Scheme::kPuno);
  EXPECT_TRUE(puno.completed);
  EXPECT_GT(puno.unicast_forwards, 0u);
}

TEST(SchemeBehaviour, PredictionHitRateIsHigh) {
  const auto puno = run("bayes", Scheme::kPuno);
  EXPECT_GT(puno.prediction_hit_rate(), 0.6);
}

TEST(SchemeBehaviour, NotificationThrottlesPolling) {
  const auto& base = run("bayes", Scheme::kBaseline);
  const auto& puno = run("bayes", Scheme::kPuno);
  EXPECT_GT(puno.notified_backoffs, 0u);
  // PUNO keeps more transactions alive (more concurrent requesters), so the
  // honest polling metric is per contended acquisition, not the raw total.
  EXPECT_LT(puno.retries_per_contended_acquire,
            base.retries_per_contended_acquire)
      << "notified requesters re-issue fewer polls per handoff";
}

TEST(SchemeBehaviour, RandomBackoffReducesAbortsInHighContention) {
  const auto& base = run("intruder", Scheme::kBaseline);
  const auto& backoff = run("intruder", Scheme::kRandomBackoff);
  EXPECT_LT(backoff.aborts, base.aborts);
}

TEST(SchemeBehaviour, RmwPredHelpsLowContentionRmwKernels) {
  // Section IV.B: RMW-Pred shines in kmeans and ssca2 (short transactions,
  // read-modify-write idiom, almost no conflicts).
  for (const char* w : {"kmeans", "ssca2"}) {
    const auto base = run(w, Scheme::kBaseline);
    const auto rmw = run(w, Scheme::kRmwPred);
    EXPECT_LE(rmw.aborts, base.aborts) << w;
  }
}

TEST(SchemeBehaviour, RmwPredHurtsHighContentionWorkloads) {
  // Section IV.B: RMW-Pred converts read-read sharing into write-read
  // conflicts, inflating aborts in contended workloads (e.g. 2x in
  // vacation).
  const auto base = run("vacation", Scheme::kBaseline);
  const auto rmw = run("vacation", Scheme::kRmwPred);
  EXPECT_GT(rmw.aborts, base.aborts);
}

TEST(SchemeBehaviour, LowContentionWorkloadsUnaffectedByPuno) {
  // ssca2/genome barely conflict, so PUNO must neither help nor hurt much.
  for (const char* w : {"ssca2", "genome"}) {
    const auto base = run(w, Scheme::kBaseline);
    const auto puno = run(w, Scheme::kPuno);
    const double ratio = static_cast<double>(puno.cycles) /
                         static_cast<double>(base.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.1) << w;
  }
}

TEST(SchemeBehaviour, AbortRatesOrderedByContentionClass) {
  // Table I's contention ordering must be reflected by the baseline.
  const auto bayes = run("bayes", Scheme::kBaseline);
  const auto vacation = run("vacation", Scheme::kBaseline);
  const auto ssca2 = run("ssca2", Scheme::kBaseline);
  EXPECT_GT(bayes.abort_rate(), vacation.abort_rate());
  EXPECT_GT(vacation.abort_rate(), ssca2.abort_rate());
  EXPECT_LT(ssca2.abort_rate(), 0.05);
  EXPECT_GT(bayes.abort_rate(), 0.7);
}

TEST(SchemeBehaviour, UnicastAblationSwitchesWork) {
  ExperimentParams p;
  p.workload = "intruder";
  p.scheme = Scheme::kPuno;
  p.scale = 0.2;
  p.base_config.puno.enable_unicast = false;
  const auto no_uni = run_experiment(p);
  EXPECT_EQ(no_uni.unicast_forwards, 0u);
  EXPECT_GT(no_uni.notified_backoffs, 0u) << "notification still active";

  p.base_config.puno.enable_unicast = true;
  p.base_config.puno.enable_notification = false;
  const auto no_note = run_experiment(p);
  EXPECT_GT(no_note.unicast_forwards, 0u);
  EXPECT_EQ(no_note.notified_backoffs, 0u);
}

}  // namespace
}  // namespace puno::metrics
