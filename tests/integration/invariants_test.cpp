// Property tests: HTM isolation invariants checked continuously while full
// workloads run, parameterized over every (workload, scheme) combination —
// with the protocol invariant oracle (src/check) attached, so every run also
// re-verifies directory/L1/UD/pinning/NoC consistency as it executes.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

#include "arch/cmp.hpp"
#include "../support/fixture.hpp"

namespace puno::arch {
namespace {

using Param = std::tuple<std::string, Scheme>;

class InvariantTest : public ::testing::TestWithParam<Param> {
 protected:
  [[nodiscard]] puno::testing::CmpHarness::Options options(
      std::uint64_t seed) const {
    puno::testing::CmpHarness::Options opts;
    opts.workload = std::get<0>(GetParam());
    opts.scheme = std::get<1>(GetParam());
    opts.seed = seed;
    opts.attach_checker = true;
    // Coarse stride: the oracle sweeps every machine structure, and this
    // suite runs 48 (workload, scheme) combinations.
    opts.checker.stride = 256;
    return opts;
  }
};

/// The "single-writer, multi-reader" invariant (Section II.B): at any point,
/// a block in one live transaction's write set must not appear in any other
/// live transaction's read or write set.
void check_isolation(Cmp& cmp, const SystemConfig& cfg) {
  for (NodeId w = 0; w < cfg.num_nodes; ++w) {
    const auto& writer = cmp.txn(w);
    if (!writer.in_txn() || writer.aborted()) continue;
    for (const BlockAddr block : writer.write_set()) {
      for (NodeId o = 0; o < cfg.num_nodes; ++o) {
        if (o == w) continue;
        const auto& other = cmp.txn(o);
        if (!other.in_txn() || other.aborted()) continue;
        ASSERT_FALSE(other.read_set().contains(block))
            << "block " << block << " written by txn on node " << w
            << " and read by live txn on node " << o;
        ASSERT_FALSE(other.write_set().contains(block))
            << "block " << block << " in two live write sets (" << w << ", "
            << o << ")";
      }
    }
  }
}

TEST_P(InvariantTest, IsolationHoldsThroughoutExecution) {
  puno::testing::CmpHarness h(options(5));
  Cmp& cmp = h.cmp();

  // Periodic invariant probe woven through the run.
  std::function<void()> probe = [&] {
    check_isolation(cmp, h.cfg());
    if (!cmp.all_done()) cmp.kernel().schedule(50, probe);
  };
  cmp.kernel().schedule(50, probe);

  ASSERT_TRUE(h.run()) << "run must complete within budget";
  EXPECT_TRUE(cmp.mesh().idle());
  h.expect_invariants_clean();
}

TEST_P(InvariantTest, AllCommitsAccountedAndSystemDrains) {
  puno::testing::CmpHarness h(options(9));
  ASSERT_TRUE(h.run());
  EXPECT_EQ(h.cmp().total_committed(),
            static_cast<std::uint64_t>(h.quota()) * h.cfg().num_nodes);
  for (NodeId n = 0; n < h.cfg().num_nodes; ++n) {
    EXPECT_FALSE(h.cmp().l1(n).has_outstanding_miss()) << "node " << n;
    EXPECT_EQ(h.cmp().directory(n).pending_services(), 0u) << "node " << n;
  }
  h.expect_invariants_clean();
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllSchemes, InvariantTest,
    ::testing::Combine(
        ::testing::Values("bayes", "intruder", "labyrinth", "yada", "genome",
                          "kmeans", "ssca2", "vacation"),
        ::testing::ValuesIn(kAllSchemes)),
    param_name);

}  // namespace
}  // namespace puno::arch
