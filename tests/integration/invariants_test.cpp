// Property tests: HTM isolation invariants checked continuously while full
// workloads run, parameterized over every (workload, scheme) combination.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <tuple>

#include "arch/cmp.hpp"
#include "workloads/stamp.hpp"

namespace puno::arch {
namespace {

using Param = std::tuple<std::string, Scheme>;

class InvariantTest : public ::testing::TestWithParam<Param> {};

/// The "single-writer, multi-reader" invariant (Section II.B): at any point,
/// a block in one live transaction's write set must not appear in any other
/// live transaction's read or write set.
void check_isolation(Cmp& cmp, const SystemConfig& cfg) {
  for (NodeId w = 0; w < cfg.num_nodes; ++w) {
    const auto& writer = cmp.txn(w);
    if (!writer.in_txn() || writer.aborted()) continue;
    for (const BlockAddr block : writer.write_set()) {
      for (NodeId o = 0; o < cfg.num_nodes; ++o) {
        if (o == w) continue;
        const auto& other = cmp.txn(o);
        if (!other.in_txn() || other.aborted()) continue;
        ASSERT_FALSE(other.read_set().contains(block))
            << "block " << block << " written by txn on node " << w
            << " and read by live txn on node " << o;
        ASSERT_FALSE(other.write_set().contains(block))
            << "block " << block << " in two live write sets (" << w << ", "
            << o << ")";
      }
    }
  }
}

TEST_P(InvariantTest, IsolationHoldsThroughoutExecution) {
  const auto& [workload, scheme] = GetParam();
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 5;
  auto wl = workloads::stamp::make(workload, cfg.num_nodes, 5, 0.12);
  Cmp cmp(cfg, *wl);

  // Periodic invariant probe woven through the run.
  std::function<void()> probe = [&] {
    check_isolation(cmp, cfg);
    if (!cmp.all_done()) cmp.kernel().schedule(50, probe);
  };
  cmp.kernel().schedule(50, probe);

  ASSERT_TRUE(cmp.run(20'000'000)) << "run must complete within budget";
  EXPECT_TRUE(cmp.mesh().idle());
}

TEST_P(InvariantTest, AllCommitsAccountedAndSystemDrains) {
  const auto& [workload, scheme] = GetParam();
  SystemConfig cfg;
  cfg.scheme = scheme;
  cfg.seed = 9;
  auto wl = workloads::stamp::make(workload, cfg.num_nodes, 9, 0.12);
  const auto quota =
      workloads::stamp::make_spec(workload, 0.12).txns_per_node;
  Cmp cmp(cfg, *wl);
  ASSERT_TRUE(cmp.run(20'000'000));
  EXPECT_EQ(cmp.total_committed(),
            static_cast<std::uint64_t>(quota) * cfg.num_nodes);
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_FALSE(cmp.l1(n).has_outstanding_miss()) << "node " << n;
    EXPECT_EQ(cmp.directory(n).pending_services(), 0u) << "node " << n;
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name =
      std::get<0>(info.param) + "_" + to_string(std::get<1>(info.param));
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloadsAllSchemes, InvariantTest,
    ::testing::Combine(
        ::testing::Values("bayes", "intruder", "labyrinth", "yada", "genome",
                          "kmeans", "ssca2", "vacation"),
        ::testing::Values(Scheme::kBaseline, Scheme::kRandomBackoff,
                          Scheme::kRmwPred, Scheme::kPuno)),
    param_name);

}  // namespace
}  // namespace puno::arch
