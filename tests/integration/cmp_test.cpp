// Whole-CMP integration: cores + HTM + coherence + NoC running real
// workloads end to end.
#include "arch/cmp.hpp"

#include <gtest/gtest.h>

#include "metrics/experiment.hpp"
#include "workloads/stamp.hpp"

namespace puno::arch {
namespace {

SystemConfig small_cfg(Scheme s = Scheme::kBaseline) {
  SystemConfig cfg;
  cfg.scheme = s;
  return cfg;
}

TEST(Cmp, RunsVacationToCompletion) {
  SystemConfig cfg = small_cfg();
  auto wl = workloads::stamp::make("vacation", cfg.num_nodes, 1, 0.2);
  Cmp cmp(cfg, *wl);
  EXPECT_TRUE(cmp.run(5'000'000));
  EXPECT_TRUE(cmp.all_done());
  EXPECT_TRUE(cmp.mesh().idle());
}

TEST(Cmp, EveryCoreMeetsItsQuota) {
  SystemConfig cfg = small_cfg();
  auto wl = workloads::stamp::make("genome", cfg.num_nodes, 1, 0.1);
  const auto quota = workloads::stamp::make_spec("genome", 0.1).txns_per_node;
  Cmp cmp(cfg, *wl);
  ASSERT_TRUE(cmp.run(5'000'000));
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_EQ(cmp.core(n).committed(), quota) << "node " << n;
  }
  EXPECT_EQ(cmp.total_committed(),
            static_cast<std::uint64_t>(quota) * cfg.num_nodes);
}

TEST(Cmp, CommitsMatchHtmStat) {
  SystemConfig cfg = small_cfg();
  auto wl = workloads::stamp::make("kmeans", cfg.num_nodes, 2, 0.1);
  Cmp cmp(cfg, *wl);
  ASSERT_TRUE(cmp.run(5'000'000));
  EXPECT_EQ(cmp.total_committed(),
            cmp.kernel().stats().counter("htm.commits").value());
}

TEST(Cmp, DeterministicForIdenticalSeeds) {
  auto run_once = [] {
    SystemConfig cfg = small_cfg(Scheme::kPuno);
    cfg.seed = 11;
    auto wl = workloads::stamp::make("intruder", cfg.num_nodes, 11, 0.15);
    Cmp cmp(cfg, *wl);
    cmp.run(10'000'000);
    return std::tuple{cmp.kernel().now(),
                      cmp.kernel().stats().counter("htm.aborts").value(),
                      cmp.mesh().router_traversals()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cmp, DifferentSeedsGiveDifferentExecutions) {
  auto run_once = [](std::uint64_t seed) {
    SystemConfig cfg = small_cfg();
    cfg.seed = seed;
    auto wl = workloads::stamp::make("intruder", cfg.num_nodes, seed, 0.15);
    Cmp cmp(cfg, *wl);
    cmp.run(10'000'000);
    return cmp.kernel().now();
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(Cmp, NoTransactionLeftRunningAfterCompletion) {
  SystemConfig cfg = small_cfg();
  auto wl = workloads::stamp::make("ssca2", cfg.num_nodes, 3, 0.1);
  Cmp cmp(cfg, *wl);
  ASSERT_TRUE(cmp.run(5'000'000));
  for (NodeId n = 0; n < cfg.num_nodes; ++n) {
    EXPECT_FALSE(cmp.txn(n).in_txn());
    EXPECT_FALSE(cmp.l1(n).has_outstanding_miss());
  }
}

TEST(RunExperiment, PopulatesResult) {
  metrics::ExperimentParams p;
  p.workload = "vacation";
  p.scheme = Scheme::kBaseline;
  p.scale = 0.2;
  const auto r = metrics::run_experiment(p);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.workload, "vacation");
  EXPECT_EQ(r.scheme, Scheme::kBaseline);
  EXPECT_GT(r.cycles, 0u);
  EXPECT_GT(r.commits, 0u);
  EXPECT_GT(r.router_traversals, 0u);
  EXPECT_GT(r.tx_getx_issued, 0u);
  EXPECT_GT(r.good_cycles, 0u);
  EXPECT_GT(r.gd_ratio(), 0.0);
  EXPECT_GE(r.abort_rate(), 0.0);
  EXPECT_LE(r.abort_rate(), 1.0);
}

TEST(RunExperiment, BaselineHasNoPunoActivity) {
  metrics::ExperimentParams p;
  p.workload = "intruder";
  p.scheme = Scheme::kBaseline;
  p.scale = 0.1;
  const auto r = metrics::run_experiment(p);
  EXPECT_EQ(r.unicast_forwards, 0u);
  EXPECT_EQ(r.mp_feedbacks, 0u);
  EXPECT_EQ(r.notified_backoffs, 0u);
}

TEST(RunExperiment, PunoProducesUnicastsOnContendedWorkload) {
  metrics::ExperimentParams p;
  p.workload = "intruder";
  p.scheme = Scheme::kPuno;
  p.scale = 0.25;
  const auto r = metrics::run_experiment(p);
  EXPECT_GT(r.unicast_forwards, 0u);
  EXPECT_GT(r.notified_backoffs, 0u);
  EXPECT_GT(r.prediction_hit_rate(), 0.5);
}

TEST(RunExperiment, FalseAbortMultiplicityIsDistribution) {
  metrics::ExperimentParams p;
  p.workload = "bayes";
  p.scheme = Scheme::kBaseline;
  p.scale = 0.25;
  const auto r = metrics::run_experiment(p);
  ASSERT_GT(r.false_abort_events, 0u);
  double total = 0;
  for (double f : r.false_abort_multiplicity) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(r.false_abort_multiplicity[0], 0.0)
      << "an event aborts at least one transaction";
}

}  // namespace
}  // namespace puno::arch
