// Bit-identity regression suite for the four pre-existing schemes.
//
// The golden files under tests/support/golden/ were generated from the
// pre-ConflictManager seed tree (PR 6). The refactor that moved the
// per-scheme decisions out of TxnContext's Scheme:: switches must not
// change a single byte of simulated output, so these tests pin:
//
//   * results_<scheme>.jsonl  — 32 seeds of RunResult JSONL across four
//     STAMP profiles (every scalar metric, cycle counts included);
//   * stats_<scheme>.csv      — the FULL stats-registry dump of one fuzz
//     run (every counter/histogram name and value, so a scheme cannot
//     silently grow or lose telemetry);
//   * trace_<scheme>.json     — a Chrome trace export (every event, in
//     emission order, with cycle/ts/cause payloads);
//   * aborts_<scheme>.txt     — the abort-attribution report derived from
//     that trace.
//
// Regenerate (ONLY when an intentional behaviour change is being made):
//   PUNO_REGEN_GOLDEN=1 ./build/tests/golden_identity_test
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "check/fuzz.hpp"
#include "metrics/experiment.hpp"
#include "metrics/stats_io.hpp"
#include "sim/config.hpp"

#ifndef PUNO_GOLDEN_DIR
#error "golden_identity_test must be compiled with -DPUNO_GOLDEN_DIR=..."
#endif

namespace puno {
namespace {

namespace fs = std::filesystem;

constexpr Scheme kPinnedSchemes[] = {Scheme::kBaseline, Scheme::kRandomBackoff,
                                     Scheme::kRmwPred, Scheme::kPuno};
constexpr std::uint32_t kNumSeeds = 32;

/// Filesystem-safe scheme slug ("RMW-Pred" contains characters gtest and
/// golden filenames should avoid).
[[nodiscard]] std::string slug(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "baseline";
    case Scheme::kRandomBackoff: return "backoff";
    case Scheme::kRmwPred: return "rmwpred";
    case Scheme::kPuno: return "puno";
    default: return "unknown";
  }
}

/// Compares `content` against the checked-in golden file, or rewrites the
/// golden when PUNO_REGEN_GOLDEN is set. Mismatches report the first
/// differing line instead of dumping megabytes of both sides.
void compare_or_regen(const std::string& content, const std::string& name) {
  const fs::path path = fs::path(PUNO_GOLDEN_DIR) / name;
  if (std::getenv("PUNO_REGEN_GOLDEN") != nullptr) {
    fs::create_directories(path.parent_path());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << path;
    out << content;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open())
      << "missing golden file " << path
      << " (regenerate from a known-good tree with PUNO_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();
  if (golden == content) return;

  std::istringstream got(content), want(golden);
  std::string got_line, want_line;
  std::size_t line = 1;
  for (;; ++line) {
    const bool g = static_cast<bool>(std::getline(got, got_line));
    const bool w = static_cast<bool>(std::getline(want, want_line));
    if (!g && !w) break;
    if (got_line != want_line || g != w) {
      FAIL() << name << " diverges from golden at line " << line
             << "\n  golden: " << (w ? want_line : "<eof>")
             << "\n  got:    " << (g ? got_line : "<eof>");
    }
  }
  FAIL() << name << " differs from golden (same lines, different bytes)";
}

class GoldenIdentity : public ::testing::TestWithParam<Scheme> {};

// 32 seeds x 4 STAMP profiles of full-system runs; every RunResult scalar
// (cycles, commits, aborts by cause, retries, false-abort stats, router
// traversals, ...) must match the seed byte-for-byte.
TEST_P(GoldenIdentity, ResultJsonl) {
  static const char* kWorkloads[] = {"genome", "intruder", "kmeans", "ssca2"};
  std::ostringstream out;
  for (std::uint32_t seed = 1; seed <= kNumSeeds; ++seed) {
    metrics::ExperimentParams p;
    p.workload = kWorkloads[seed % 4];
    p.scheme = GetParam();
    p.seed = seed;
    p.scale = 0.02;
    metrics::write_result_jsonl(metrics::run_experiment(p), out);
  }
  compare_or_regen(out.str(), "results_" + slug(GetParam()) + ".jsonl");
}

// Full stats-registry dump of one fuzz-shaped run: pins every counter and
// histogram NAME as well as value, so the refactor cannot register new
// stats under a pre-existing scheme (or drop old ones).
TEST_P(GoldenIdentity, StatsCsv) {
  const std::uint64_t fuzz_seed = 7;
  const SystemConfig cfg = check::make_fuzz_config(fuzz_seed, GetParam());
  const auto spec = check::make_fuzz_spec(fuzz_seed);
  const auto outcome = check::run_one(cfg, spec, check::CheckerConfig{},
                                      2'000'000);
  ASSERT_TRUE(outcome.completed);
  compare_or_regen(outcome.stats_csv, "stats_" + slug(GetParam()) + ".csv");
}

// Chrome trace export + abort-attribution report of one traced run: pins
// the event stream itself (kind, order, cycle, timestamps, abort causes).
TEST_P(GoldenIdentity, TraceAndAbortReport) {
  const fs::path tmp = fs::path(::testing::TempDir());
  const std::string trace_path =
      (tmp / ("golden_trace_" + slug(GetParam()) + ".json")).string();
  const std::string report_path =
      (tmp / ("golden_aborts_" + slug(GetParam()) + ".txt")).string();

  metrics::ExperimentParams p;
  p.workload = "intruder";
  p.scheme = GetParam();
  p.seed = 3;
  p.scale = 0.04;
  p.trace.enabled = true;
  p.trace.path = trace_path;
  p.trace.report_path = report_path;
  const auto result = metrics::run_experiment(p);
  ASSERT_TRUE(result.completed);

  for (const auto& [path, name] :
       {std::pair{trace_path, "trace_" + slug(GetParam()) + ".json"},
        std::pair{report_path, "aborts_" + slug(GetParam()) + ".txt"}}) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << path;
    std::stringstream buf;
    buf << in.rdbuf();
    compare_or_regen(buf.str(), name);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreexistingSchemes, GoldenIdentity,
                         ::testing::ValuesIn(kPinnedSchemes),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kBaseline: return "Baseline";
                             case Scheme::kRandomBackoff: return "Backoff";
                             case Scheme::kRmwPred: return "RmwPred";
                             case Scheme::kPuno: return "Puno";
                             default: return "Unknown";
                           }
                         });

}  // namespace
}  // namespace puno
