// Directed tests of the core model: transaction sequencing, abort-restart
// behaviour, and think-time accounting, using a scripted workload.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "arch/cmp.hpp"
#include "workloads/workload.hpp"

namespace puno::arch {
namespace {

/// Replays an explicit list of transaction descriptors on node 0; other
/// nodes idle.
class ScriptedWorkload final : public workloads::Workload {
 public:
  explicit ScriptedWorkload(std::vector<workloads::TxnDesc> script)
      : script_(std::move(script)) {}
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<workloads::TxnDesc> next(NodeId node) override {
    if (node != 0 || pos_ >= script_.size()) return std::nullopt;
    return script_[pos_++];
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }

 private:
  std::string name_ = "scripted";
  std::vector<workloads::TxnDesc> script_;
  std::size_t pos_ = 0;
};

workloads::TxnDesc simple_txn(StaticTxId id, std::uint32_t ops,
                              Addr base = 0) {
  workloads::TxnDesc d;
  d.static_id = id;
  d.pre_think = 10;
  d.post_think = 10;
  for (std::uint32_t i = 0; i < ops; ++i) {
    d.ops.push_back({i % 2 == 1, base + i * 64, 100 + i, 3});
  }
  return d;
}

TEST(Core, ExecutesScriptInOrder) {
  SystemConfig cfg;
  ScriptedWorkload wl({simple_txn(0, 4), simple_txn(1, 2), simple_txn(2, 6)});
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(1'000'000));
  EXPECT_EQ(cmp.core(0).committed(), 3u);
  EXPECT_EQ(cmp.kernel().stats().counter("htm.commits").value(), 3u);
  EXPECT_EQ(cmp.kernel().stats().counter("htm.aborts").value(), 0u)
      << "single active core cannot conflict";
}

TEST(Core, EmptyTransactionCommits) {
  SystemConfig cfg;
  ScriptedWorkload wl({simple_txn(0, 0)});
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(100'000));
  EXPECT_EQ(cmp.core(0).committed(), 1u);
}

TEST(Core, OtherCoresFinishImmediatelyWithEmptyStreams) {
  SystemConfig cfg;
  ScriptedWorkload wl({simple_txn(0, 2)});
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(100'000));
  for (NodeId n = 1; n < cfg.num_nodes; ++n) {
    EXPECT_TRUE(cmp.core(n).done());
    EXPECT_EQ(cmp.core(n).committed(), 0u);
  }
}

TEST(Core, TxLBLearnsCommittedLengths) {
  SystemConfig cfg;
  ScriptedWorkload wl({simple_txn(3, 4), simple_txn(3, 4)});
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(1'000'000));
  EXPECT_GT(cmp.txn(0).txlb().estimate(3), 0u);
  EXPECT_EQ(cmp.txn(0).txlb().size(), 1u) << "one static transaction";
}

TEST(Core, GoodCyclesAccountedForSoloRun) {
  SystemConfig cfg;
  ScriptedWorkload wl({simple_txn(0, 4)});
  Cmp cmp(cfg, wl);
  ASSERT_TRUE(cmp.run(1'000'000));
  EXPECT_GT(cmp.kernel().stats().counter("htm.good_cycles").value(), 0u);
  EXPECT_EQ(cmp.kernel().stats().counter("htm.discarded_cycles").value(), 0u);
}

TEST(Core, ThinkTimeDelaysExecution) {
  SystemConfig cfg;
  auto slow = simple_txn(0, 1);
  slow.pre_think = 5000;
  ScriptedWorkload wl_slow({slow});
  Cmp cmp_slow(cfg, wl_slow);
  ASSERT_TRUE(cmp_slow.run(1'000'000));

  ScriptedWorkload wl_fast({simple_txn(0, 1)});
  Cmp cmp_fast(cfg, wl_fast);
  ASSERT_TRUE(cmp_fast.run(1'000'000));
  EXPECT_GT(cmp_slow.kernel().now(), cmp_fast.kernel().now() + 4000);
}

}  // namespace
}  // namespace puno::arch
