// Differential property test (the fuzz harness's strongest oracle, run as a
// regular ctest): across 32 random machine/workload shapes, a baseline and a
// PUNO simulation of the same seed must commit the same per-node transaction
// counts — PUNO changes when conflicts are detected and how losers back off
// (Section III), never which transactions eventually commit — while every
// protocol invariant holds in both runs. Directionally, PUNO must not
// falsely abort more transactions than the baseline in aggregate (Figure 2).
#include <gtest/gtest.h>

#include "check/fuzz.hpp"

namespace puno::check {
namespace {

TEST(DifferentialOracle, BaselineAndPunoAgreeAcross32Seeds) {
  FuzzOptions opts;
  opts.seed_start = 1;
  opts.num_seeds = 32;
  opts.schemes = {Scheme::kBaseline, Scheme::kPuno};
  opts.differential = true;
  // Coarse stride keeps 64 whole-CMP simulations affordable; violations
  // would still shrink to their first cycle via the stride-1 re-run.
  opts.checker.stride = 64;
  const FuzzReport report = run_fuzz(opts);

  EXPECT_EQ(report.runs, 64u);
  EXPECT_EQ(report.violation_runs, 0u);
  EXPECT_EQ(report.incomplete_runs, 0u);
  EXPECT_EQ(report.differential_failures, 0u);
  for (const auto& line : report.repro_lines) {
    ADD_FAILURE() << "repro: " << line;
  }

  // The paper's headline claim, directionally: predictive unicast +
  // notification reduce false aborts versus the polling baseline.
  EXPECT_LE(report.puno_falsely_aborted, report.baseline_falsely_aborted);
  // The workloads are contended enough that the baseline actually exhibits
  // the pathology the paper attacks; otherwise this test proves nothing.
  EXPECT_GT(report.baseline_falsely_aborted, 0u);
}

}  // namespace
}  // namespace puno::check
