#include "coherence/message.hpp"

#include <gtest/gtest.h>

namespace puno::coherence {
namespace {

TEST(Message, VnetAssignmentByClass) {
  EXPECT_EQ(vnet_of(MsgType::kGetS), noc::VNet::kRequest);
  EXPECT_EQ(vnet_of(MsgType::kGetX), noc::VNet::kRequest);
  EXPECT_EQ(vnet_of(MsgType::kPutX), noc::VNet::kRequest);
  EXPECT_EQ(vnet_of(MsgType::kInv), noc::VNet::kForward);
  EXPECT_EQ(vnet_of(MsgType::kFwdGetS), noc::VNet::kForward);
  EXPECT_EQ(vnet_of(MsgType::kWbAck), noc::VNet::kForward);
  EXPECT_EQ(vnet_of(MsgType::kData), noc::VNet::kResponse);
  EXPECT_EQ(vnet_of(MsgType::kAck), noc::VNet::kResponse);
  EXPECT_EQ(vnet_of(MsgType::kNack), noc::VNet::kResponse);
  EXPECT_EQ(vnet_of(MsgType::kUnblock), noc::VNet::kResponse);
  EXPECT_EQ(vnet_of(MsgType::kWbData), noc::VNet::kResponse);
}

TEST(Message, OnlyDataMessagesCarryPayload) {
  EXPECT_TRUE(carries_data(MsgType::kData));
  EXPECT_TRUE(carries_data(MsgType::kWbData));
  EXPECT_TRUE(carries_data(MsgType::kPutX));
  EXPECT_FALSE(carries_data(MsgType::kGetS));
  EXPECT_FALSE(carries_data(MsgType::kInv));
  EXPECT_FALSE(carries_data(MsgType::kNack));
  EXPECT_FALSE(carries_data(MsgType::kUnblock));
}

TEST(Message, MakeInitializesRouting) {
  auto m = Message::make(MsgType::kWbAck, 0x80, 3, 5);
  EXPECT_EQ(m->type, MsgType::kWbAck);
  EXPECT_EQ(m->addr, 0x80u);
  EXPECT_EQ(m->sender, 3);
  EXPECT_EQ(m->requester, 5);
}

TEST(Message, PunoExtensionDefaultsAreOff) {
  Message m;
  EXPECT_FALSE(m.u_bit);
  EXPECT_FALSE(m.mp_bit);
  EXPECT_EQ(m.mp_node, kInvalidNode);
  EXPECT_EQ(m.notification, 0u);
  EXPECT_FALSE(m.responder_aborted);
  EXPECT_TRUE(m.has_payload);
}

TEST(Message, NodeBit) {
  EXPECT_EQ(node_bit(0), 1ull);
  EXPECT_EQ(node_bit(5), 32ull);
  EXPECT_EQ(node_bit(63), 1ull << 63);
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(to_string(MsgType::kGetS), "GetS");
  EXPECT_STREQ(to_string(MsgType::kUnblock), "Unblock");
  EXPECT_STREQ(to_string(MsgType::kWbStale), "WbStale");
}

}  // namespace
}  // namespace puno::coherence
