#include "coherence/cache_array.hpp"

#include <gtest/gtest.h>

#include <set>

namespace puno::coherence {
namespace {

struct Meta {
  int tag = 0;
};
using Array = CacheArray<Meta>;

TEST(CacheArray, Geometry) {
  Array a(32 * 1024, 4, 64);
  EXPECT_EQ(a.num_sets(), 128u);
  EXPECT_EQ(a.assoc(), 4u);
}

TEST(CacheArray, MissThenHit) {
  Array a(32 * 1024, 4, 64);
  EXPECT_EQ(a.find(0x1000), nullptr);
  auto& line = a.victim(0x1000);
  a.fill(line, 0x1000);
  ASSERT_NE(a.find(0x1000), nullptr);
  EXPECT_EQ(a.find(0x1000)->addr, 0x1000u);
}

TEST(CacheArray, SetIndexSeparatesBlocks) {
  Array a(32 * 1024, 4, 64);
  EXPECT_NE(a.set_index(0), a.set_index(64));
  // Same set: addresses 128 sets * 64 bytes apart.
  EXPECT_EQ(a.set_index(0), a.set_index(128 * 64));
}

TEST(CacheArray, FillsAllWaysBeforeEvicting) {
  Array a(32 * 1024, 4, 64);
  const std::uint64_t stride = 128ull * 64;  // same set
  for (int i = 0; i < 4; ++i) {
    auto& v = a.victim(i * stride);
    EXPECT_FALSE(v.valid) << "4-way set has room for 4 blocks";
    a.fill(v, i * stride);
  }
  auto& v = a.victim(4 * stride);
  EXPECT_TRUE(v.valid) << "5th block in a set must evict";
}

TEST(CacheArray, LruEvictsLeastRecentlyUsed) {
  Array a(32 * 1024, 4, 64);
  const std::uint64_t stride = 128ull * 64;
  for (std::uint64_t i = 0; i < 4; ++i) a.fill(a.victim(i * stride), i * stride);
  // Touch block 0, making block 1 the LRU.
  a.touch(*a.find(0));
  auto& v = a.victim(4 * stride);
  EXPECT_EQ(v.addr, stride) << "block 1 is least recently used";
}

TEST(CacheArray, VictimExcludingSkipsPinned) {
  Array a(32 * 1024, 4, 64);
  const std::uint64_t stride = 128ull * 64;
  for (std::uint64_t i = 0; i < 4; ++i) a.fill(a.victim(i * stride), i * stride);
  // Pin the two LRU blocks (0 and 1).
  auto* v = a.victim_excluding(4 * stride, [&](const CacheLine<Meta>& l) {
    return l.addr == 0 || l.addr == stride;
  });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->addr, 2 * stride);
}

TEST(CacheArray, VictimExcludingAllPinnedReturnsNull) {
  Array a(32 * 1024, 4, 64);
  const std::uint64_t stride = 128ull * 64;
  for (std::uint64_t i = 0; i < 4; ++i) a.fill(a.victim(i * stride), i * stride);
  auto* v = a.victim_excluding(4 * stride,
                               [](const CacheLine<Meta>&) { return true; });
  EXPECT_EQ(v, nullptr);
}

TEST(CacheArray, VictimExcludingPrefersInvalidWay) {
  Array a(32 * 1024, 4, 64);
  const std::uint64_t stride = 128ull * 64;
  a.fill(a.victim(0), 0);
  auto* v = a.victim_excluding(stride,
                               [](const CacheLine<Meta>&) { return true; });
  ASSERT_NE(v, nullptr);
  EXPECT_FALSE(v->valid) << "invalid ways are usable even when all pinned";
}

TEST(CacheArray, InvalidateFreesWay) {
  Array a(32 * 1024, 4, 64);
  a.fill(a.victim(0x40), 0x40);
  a.invalidate(*a.find(0x40));
  EXPECT_EQ(a.find(0x40), nullptr);
}

TEST(CacheArray, FillResetsState) {
  Array a(32 * 1024, 4, 64);
  auto& line = a.victim(0x40);
  a.fill(line, 0x40);
  line.state.tag = 7;
  a.invalidate(line);
  a.fill(a.victim(0x40), 0x40);
  EXPECT_EQ(a.find(0x40)->state.tag, 0) << "fill() default-initializes state";
}

TEST(CacheArray, ForEachValidVisitsExactlyValidLines) {
  Array a(32 * 1024, 4, 64);
  a.fill(a.victim(0x40), 0x40);
  a.fill(a.victim(0x80), 0x80);
  std::set<BlockAddr> seen;
  a.for_each_valid([&](const CacheLine<Meta>& l) { seen.insert(l.addr); });
  EXPECT_EQ(seen, (std::set<BlockAddr>{0x40, 0x80}));
}

}  // namespace
}  // namespace puno::coherence
