// Directory FSM unit tests: drive handle_message() directly and capture the
// outgoing messages, with no network and no L1s, so every (state, message)
// transition is observable in isolation.
#include "coherence/directory.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>

namespace puno::coherence {
namespace {

struct SentMsg {
  NodeId dst;
  Message msg;
};

class DirectoryUnitTest : public ::testing::Test {
 protected:
  DirectoryUnitTest() {
    dir_ = std::make_unique<Directory>(
        kernel_, cfg_, kHome,
        [this](NodeId dst, std::shared_ptr<const Message> m) {
          sent_.push_back({dst, *m});
        });
  }

  /// Runs the kernel until pending events (delayed data sends) fire.
  void settle(Cycle cycles = 400) { kernel_.run_for(cycles); }

  /// Pops the oldest captured message, asserting its type.
  SentMsg expect_sent(MsgType type) {
    if (sent_.empty()) {
      ADD_FAILURE() << "expected " << to_string(type) << ", nothing sent";
      return {};
    }
    SentMsg m = sent_.front();
    sent_.pop_front();
    EXPECT_EQ(m.msg.type, type);
    return m;
  }

  Message make(MsgType t, BlockAddr addr, NodeId sender,
               bool transactional = false, Timestamp ts = kInvalidTimestamp) {
    Message m;
    m.type = t;
    m.addr = addr;
    m.sender = sender;
    m.requester = sender;
    m.transactional = transactional;
    m.ts = ts;
    return m;
  }

  void unblock(BlockAddr addr, NodeId requester, bool success,
               std::uint64_t surviving = 0) {
    Message u = make(MsgType::kUnblock, addr, requester);
    u.success = success;
    for (NodeId n = 0; n < 64; ++n) {
      if ((surviving >> n) & 1) u.surviving_sharers.add(n);
    }
    dir_->handle_message(u);
  }

  /// Brings `addr` to S state with the given sharers.
  void make_shared_line(BlockAddr addr, std::initializer_list<NodeId> nodes) {
    bool first = true;
    for (NodeId n : nodes) {
      dir_->handle_message(make(MsgType::kGetS, addr, n));
      settle();
      if (first) {
        // First reader gets E; it must "downgrade" via a second reader's
        // FwdGetS in the real system — here we emulate the responses.
        expect_sent(MsgType::kData);
        unblock(addr, n, true);
        first = false;
        continue;
      }
      // Owned at previous reader: dir forwards. Emulate the owner granting.
      const SentMsg fwd = sent_.front();
      if (fwd.msg.type == MsgType::kFwdGetS) {
        sent_.pop_front();
        unblock(addr, n, true);
      } else {
        expect_sent(MsgType::kData);
        unblock(addr, n, true);
      }
    }
    sent_.clear();
  }

  static constexpr NodeId kHome = 2;
  sim::Kernel kernel_;
  SystemConfig cfg_;
  std::unique_ptr<Directory> dir_;
  std::deque<SentMsg> sent_;
};

TEST_F(DirectoryUnitTest, GetSOnIdleGrantsExclusiveData) {
  dir_->handle_message(make(MsgType::kGetS, 0x1000, 4));
  settle();
  const SentMsg m = expect_sent(MsgType::kData);
  EXPECT_EQ(m.dst, 4);
  EXPECT_TRUE(m.msg.exclusive);
  EXPECT_TRUE(m.msg.sole);
  EXPECT_TRUE(m.msg.has_payload);
  unblock(0x1000, 4, true);
  const auto* e = dir_->peek(0x1000);
  EXPECT_EQ(e->state, Directory::DirState::kEM);
  EXPECT_EQ(e->owner, 4);
}

TEST_F(DirectoryUnitTest, ColdMissPaysMemoryLatencyThenL2Hits) {
  dir_->handle_message(make(MsgType::kGetS, 0x1000, 4));
  settle(cfg_.cache.l2_latency + 2);
  EXPECT_TRUE(sent_.empty()) << "memory latency (200) not yet elapsed";
  settle(cfg_.cache.memory_latency);
  expect_sent(MsgType::kData);
  unblock(0x1000, 4, true);

  // Writeback brings the line home; the next idle-state fetch is an L2 hit.
  Message putx = make(MsgType::kPutX, 0x1000, 4);
  dir_->handle_message(putx);
  expect_sent(MsgType::kWbAck);
  dir_->handle_message(make(MsgType::kGetS, 0x1000, 5));
  settle(cfg_.cache.l2_latency + 2);
  expect_sent(MsgType::kData);
  unblock(0x1000, 5, true);
}

TEST_F(DirectoryUnitTest, GetSOnOwnedForwardsToOwner) {
  dir_->handle_message(make(MsgType::kGetS, 0x40, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x40, 1, true);

  dir_->handle_message(make(MsgType::kGetS, 0x40, 7));
  const SentMsg fwd = expect_sent(MsgType::kFwdGetS);
  EXPECT_EQ(fwd.dst, 1);
  EXPECT_EQ(fwd.msg.requester, 7);
  EXPECT_TRUE(fwd.msg.sole);
  unblock(0x40, 7, true);
  const auto* e = dir_->peek(0x40);
  EXPECT_EQ(e->state, Directory::DirState::kS);
  EXPECT_EQ(e->sharers.mask64(), node_bit(1) | node_bit(7));
}

TEST_F(DirectoryUnitTest, FailedGetSOnOwnedKeepsOwner) {
  dir_->handle_message(make(MsgType::kGetS, 0x40, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x40, 1, true);
  dir_->handle_message(make(MsgType::kGetS, 0x40, 7));
  expect_sent(MsgType::kFwdGetS);
  unblock(0x40, 7, /*success=*/false);  // owner nacked
  const auto* e = dir_->peek(0x40);
  EXPECT_EQ(e->state, Directory::DirState::kEM);
  EXPECT_EQ(e->owner, 1);
}

TEST_F(DirectoryUnitTest, GetXOnSharedMulticastsAndSendsAckCount) {
  make_shared_line(0x80, {1, 3, 5});
  dir_->handle_message(make(MsgType::kGetX, 0x80, 9));
  settle();
  int invs = 0;
  std::uint64_t inv_dsts = 0;
  bool data_seen = false;
  std::uint32_t expected = 0;
  while (!sent_.empty()) {
    const SentMsg m = sent_.front();
    sent_.pop_front();
    if (m.msg.type == MsgType::kInv) {
      ++invs;
      inv_dsts |= node_bit(m.dst);
      EXPECT_FALSE(m.msg.u_bit);
    } else if (m.msg.type == MsgType::kData) {
      data_seen = true;
      expected = m.msg.expected_responses;
      EXPECT_EQ(m.dst, 9);
    }
  }
  EXPECT_EQ(invs, 3);
  EXPECT_EQ(inv_dsts, node_bit(1) | node_bit(3) | node_bit(5));
  EXPECT_TRUE(data_seen);
  EXPECT_EQ(expected, 3u);
  unblock(0x80, 9, true);
  EXPECT_EQ(dir_->peek(0x80)->state, Directory::DirState::kEM);
  EXPECT_EQ(dir_->peek(0x80)->owner, 9);
}

TEST_F(DirectoryUnitTest, FailedGetXRestoresSurvivingSharers) {
  make_shared_line(0x80, {1, 3, 5});
  dir_->handle_message(make(MsgType::kGetX, 0x80, 9));
  settle();
  sent_.clear();
  // Suppose only node 3 nacked; 1 and 5 were (falsely) invalidated.
  unblock(0x80, 9, /*success=*/false, node_bit(3));
  const auto* e = dir_->peek(0x80);
  EXPECT_EQ(e->state, Directory::DirState::kS);
  EXPECT_EQ(e->sharers.mask64(), node_bit(3));
}

TEST_F(DirectoryUnitTest, UpgradeByExistingSharerKeepsOwnCopyOnFailure) {
  make_shared_line(0x80, {1, 3});
  dir_->handle_message(make(MsgType::kGetX, 0x80, 1));  // 1 upgrades
  settle();
  sent_.clear();
  unblock(0x80, 1, /*success=*/false, node_bit(3));
  EXPECT_EQ(dir_->peek(0x80)->sharers.mask64(), node_bit(3) | node_bit(1))
      << "the upgrading requester was never invalidated";
}

TEST_F(DirectoryUnitTest, UpgradeGrantHasNoPayload) {
  // Reach S with a single sharer: a failed GETX whose only survivor is
  // node 1 (a lone *reader* would be EM, not S).
  make_shared_line(0x80, {1, 3});
  dir_->handle_message(make(MsgType::kGetX, 0x80, 9));
  settle();
  sent_.clear();
  unblock(0x80, 9, /*success=*/false, node_bit(1));
  ASSERT_EQ(dir_->peek(0x80)->sharers.mask64(), node_bit(1));

  dir_->handle_message(make(MsgType::kGetX, 0x80, 1));
  settle();
  const SentMsg m = expect_sent(MsgType::kData);
  EXPECT_FALSE(m.msg.has_payload) << "sole-sharer upgrade is control-only";
  EXPECT_TRUE(m.msg.sole);
  unblock(0x80, 1, true);
  EXPECT_EQ(dir_->peek(0x80)->owner, 1);
}

TEST_F(DirectoryUnitTest, BusyEntryQueuesSecondRequest) {
  dir_->handle_message(make(MsgType::kGetS, 0xC0, 1));
  dir_->handle_message(make(MsgType::kGetS, 0xC0, 2));  // queued
  settle();
  EXPECT_EQ(sent_.size(), 1u) << "only the first service may act";
  expect_sent(MsgType::kData);
  unblock(0xC0, 1, true);
  settle();
  // Second service proceeds after the unblock: EM(1) -> forward to 1.
  const SentMsg fwd = expect_sent(MsgType::kFwdGetS);
  EXPECT_EQ(fwd.dst, 1);
  unblock(0xC0, 2, true);
}

TEST_F(DirectoryUnitTest, RequestsToDistinctLinesServiceConcurrently) {
  dir_->handle_message(make(MsgType::kGetS, 0x100, 1));
  dir_->handle_message(make(MsgType::kGetS, 0x200, 2));
  settle();
  EXPECT_EQ(sent_.size(), 2u) << "different lines never block each other";
}

TEST_F(DirectoryUnitTest, StalePutXGetsWbStale) {
  dir_->handle_message(make(MsgType::kGetS, 0x40, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x40, 1, true);
  // Ownership moved to node 6 via a GetX before node 1's PutX arrives.
  dir_->handle_message(make(MsgType::kGetX, 0x40, 6));
  expect_sent(MsgType::kInv);
  unblock(0x40, 6, true);
  dir_->handle_message(make(MsgType::kPutX, 0x40, 1));
  const SentMsg m = expect_sent(MsgType::kWbStale);
  EXPECT_EQ(m.dst, 1);
  EXPECT_EQ(dir_->peek(0x40)->owner, 6) << "stale writeback changes nothing";
}

TEST_F(DirectoryUnitTest, PutXQueuedBehindBusyService) {
  dir_->handle_message(make(MsgType::kGetS, 0x40, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x40, 1, true);
  // Busy the entry with a second reader, then let the owner's PutX arrive.
  dir_->handle_message(make(MsgType::kGetS, 0x40, 7));
  expect_sent(MsgType::kFwdGetS);
  dir_->handle_message(make(MsgType::kPutX, 0x40, 1));
  EXPECT_TRUE(sent_.empty()) << "PutX must wait for the active service";
  unblock(0x40, 7, true);
  settle();
  const SentMsg m = expect_sent(MsgType::kWbStale);
  EXPECT_EQ(m.dst, 1) << "after the fwd, node 1 is no longer sole owner";
}

TEST_F(DirectoryUnitTest, RequestQueuedBehindPutXIsStillServiced) {
  // Regression test: a PutX dequeued from the pending list must not strand
  // the requests queued behind it (it never blocks the entry itself).
  dir_->handle_message(make(MsgType::kGetS, 0x40, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x40, 1, true);
  // Busy the entry, then queue a PutX AND a GetS behind the busy service.
  dir_->handle_message(make(MsgType::kGetS, 0x40, 7));
  expect_sent(MsgType::kFwdGetS);
  dir_->handle_message(make(MsgType::kPutX, 0x40, 1));
  dir_->handle_message(make(MsgType::kGetS, 0x40, 9));
  EXPECT_TRUE(sent_.empty());
  unblock(0x40, 7, true);
  settle();
  // Order: stale PutX answered, then node 9's read serviced from home.
  expect_sent(MsgType::kWbStale);
  const SentMsg data = expect_sent(MsgType::kData);
  EXPECT_EQ(data.dst, 9);
  unblock(0x40, 9, true);
}

TEST_F(DirectoryUnitTest, TransactionalGetxBlockedCyclesAreSampled) {
  make_shared_line(0x80, {1, 3});
  Message getx = make(MsgType::kGetX, 0x80, 9, /*transactional=*/true, 77);
  dir_->handle_message(getx);
  settle(50);
  unblock(0x80, 9, true);
  const auto& scalar = kernel_.stats().scalar("dir.txgetx_blocked_cycles");
  EXPECT_EQ(scalar.count(), 1u);
  EXPECT_GT(scalar.mean(), 0.0);
}

TEST_F(DirectoryUnitTest, WbDataRefillsL2) {
  // An owner downgrade's WbData must land in the L2 so the next idle fetch
  // is a 20-cycle hit instead of 200-cycle memory.
  dir_->handle_message(make(MsgType::kGetS, 0x140, 1));
  settle();
  expect_sent(MsgType::kData);
  unblock(0x140, 1, true);
  dir_->handle_message(make(MsgType::kWbData, 0x140, 1));
  // Drop ownership so the next read is serviced from home.
  dir_->handle_message(make(MsgType::kPutX, 0x140, 1));
  expect_sent(MsgType::kWbAck);
  dir_->handle_message(make(MsgType::kGetS, 0x140, 2));
  settle(cfg_.cache.l2_latency + 2);
  expect_sent(MsgType::kData);  // arrived within L2 latency: it was a hit
}

}  // namespace
}  // namespace puno::coherence
