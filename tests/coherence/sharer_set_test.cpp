// SharerSet: the three directory sharer-tracking representations.
//
// The load-bearing property is over-approximation: whatever representation
// the directory uses, contains() must never return false for a node that
// was added and not removed — that is what keeps the DIR-L1 inclusivity
// invariant true by construction. The property tests drive randomized
// add/remove/clear sequences against a reference std::set and check
// exactly that, plus exactness where the representation promises it
// (kFull always; kCoarse with region 1; kLimited below the pointer cap).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "coherence/sharer_set.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace puno::coherence {
namespace {

[[nodiscard]] SharerSet::Params params(SharerRep rep, std::uint16_t nodes,
                                       std::uint16_t region = 4,
                                       std::uint16_t pointers = 4) {
  return SharerSet::Params{rep, nodes, region, pointers};
}

[[nodiscard]] std::vector<NodeId> sorted(const std::set<NodeId>& s) {
  return {s.begin(), s.end()};
}

// --- kFull: exact at every size, including past the inline words ---

TEST(SharerSetFull, ExactSmall) {
  SharerSet s(params(SharerRep::kFull, 16));
  EXPECT_TRUE(s.empty());
  s.add(3);
  s.add(11);
  s.add(3);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_TRUE(s.contains(11));
  EXPECT_FALSE(s.contains(4));
  s.remove(3);
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{11}));
  s.clear();
  EXPECT_TRUE(s.empty());
}

TEST(SharerSetFull, GrowsPastInlineStorage) {
  // 1024 nodes: words 0..1 are inline, the rest heap. Exercise the word
  // boundaries on both sides of the inline/heap split.
  SharerSet s(params(SharerRep::kFull, 1024));
  const NodeId probes[] = {0, 63, 64, 127, 128, 129, 511, 512, 1023};
  for (NodeId n : probes) s.add(n);
  EXPECT_EQ(s.count(), 9u);
  for (NodeId n : probes) EXPECT_TRUE(s.contains(n)) << n;
  EXPECT_FALSE(s.contains(130));
  EXPECT_FALSE(s.contains(1022));
  // Ascending iteration across the storage split.
  EXPECT_EQ(s.to_vector(),
            (std::vector<NodeId>{0, 63, 64, 127, 128, 129, 511, 512, 1023}));
  s.remove(128);
  s.remove(1023);
  EXPECT_EQ(s.count(), 7u);
  EXPECT_FALSE(s.contains(128));
  // mask64 truncates to the first 64 nodes by design.
  EXPECT_EQ(s.mask64(), (1ull << 0) | (1ull << 63));
}

TEST(SharerSetFull, DeepCopyIncludesHeap) {
  SharerSet a(params(SharerRep::kFull, 512));
  a.add(7);
  a.add(300);
  SharerSet b = a;
  a.remove(300);
  a.add(301);
  EXPECT_TRUE(b.contains(300));
  EXPECT_FALSE(b.contains(301));
  SharerSet c(params(SharerRep::kFull, 512));
  c = b;
  EXPECT_EQ(c.to_vector(), (std::vector<NodeId>{7, 300}));
}

// --- kCoarse: whole-region over-approximation ---

TEST(SharerSetCoarse, RegionGranularity) {
  SharerSet s(params(SharerRep::kCoarse, 16, /*region=*/4));
  s.add(5);  // marks region 1 = nodes 4..7
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(4));
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(3));
  EXPECT_FALSE(s.contains(8));
  EXPECT_EQ(s.count(), 4u);
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{4, 5, 6, 7}));
  // remove() is a representation no-op: a region bit cannot be cleared
  // without knowing the other members.
  s.remove(5);
  EXPECT_TRUE(s.contains(5));
  // assign() rebuilds from exact survivor info.
  SharerSet exact;
  exact.add(12);
  s.assign(exact);
  EXPECT_FALSE(s.contains(5));
  EXPECT_TRUE(s.contains(12));
  EXPECT_EQ(s.count(), 4u);  // region 3 = nodes 12..15
}

TEST(SharerSetCoarse, LastRegionClipsToNumNodes) {
  // 10 nodes, region 4: regions are {0..3}, {4..7}, {8..9}.
  SharerSet s(params(SharerRep::kCoarse, 10, /*region=*/4));
  s.add(9);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{8, 9}));
}

TEST(SharerSetCoarse, RegionOneIsExact) {
  SharerSet s(params(SharerRep::kCoarse, 16, /*region=*/1));
  s.add(2);
  s.add(9);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(3));
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{2, 9}));
}

// --- kLimited: exact pointers until overflow, then broadcast ---

TEST(SharerSetLimited, ExactBelowCapacity) {
  SharerSet s(params(SharerRep::kLimited, 64, 4, /*pointers=*/4));
  s.add(40);
  s.add(3);
  s.add(17);
  s.add(3);  // duplicate: no pointer consumed
  EXPECT_FALSE(s.broadcast());
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{3, 17, 40}));  // sorted
  s.remove(17);
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{3, 40}));
  s.add(63);
  s.add(0);
  EXPECT_EQ(s.count(), 4u);  // exactly at capacity, still exact
  EXPECT_FALSE(s.broadcast());
}

TEST(SharerSetLimited, OverflowsToBroadcastAtCapacityPlusOne) {
  SharerSet s(params(SharerRep::kLimited, 32, 4, /*pointers=*/2));
  s.add(1);
  s.add(2);
  EXPECT_FALSE(s.broadcast());
  s.add(3);  // third distinct sharer: overflow
  EXPECT_TRUE(s.broadcast());
  EXPECT_EQ(s.count(), 32u);
  for (NodeId n = 0; n < 32; ++n) EXPECT_TRUE(s.contains(n)) << n;
  // Broadcast is sticky under remove(); only clear()/assign() rebuild.
  s.remove(1);
  EXPECT_TRUE(s.broadcast());
  s.clear();
  EXPECT_FALSE(s.broadcast());
  EXPECT_TRUE(s.empty());
  // Re-adding a duplicate at capacity must NOT overflow.
  s.add(4);
  s.add(5);
  s.add(5);
  EXPECT_FALSE(s.broadcast());
}

TEST(SharerSetLimited, ExpandOfBroadcastCoversMachine) {
  SharerSet s(params(SharerRep::kLimited, 8, 4, /*pointers=*/1));
  s.add(6);
  s.add(1);
  ASSERT_TRUE(s.broadcast());
  const SharerSet exact = s.expand_excluding(3);
  EXPECT_EQ(exact.to_vector(), (std::vector<NodeId>{0, 1, 2, 4, 5, 6, 7}));
}

// --- Cross-representation properties, randomized against std::set ---

struct RepCase {
  SharerRep rep;
  std::uint16_t nodes;
  std::uint16_t region;
  std::uint16_t pointers;
  bool exact;  ///< representation promises exact membership w/o remove()
};

class SharerSetProperty : public ::testing::TestWithParam<RepCase> {};

TEST_P(SharerSetProperty, OverApproximatesReference) {
  const RepCase rc = GetParam();
  sim::Rng rng(0xC0FFEEu + static_cast<std::uint64_t>(rc.rep) * 997 +
               rc.nodes);
  for (int round = 0; round < 50; ++round) {
    SharerSet s(params(rc.rep, rc.nodes, rc.region, rc.pointers));
    std::set<NodeId> ref;
    for (int op = 0; op < 200; ++op) {
      const auto n = static_cast<NodeId>(rng.next_below(rc.nodes));
      const std::uint64_t act = rng.next_below(100);
      if (act < 70) {
        s.add(n);
        ref.insert(n);
      } else if (act < 95) {
        // Only kFull supports in-place removal; for lossy reps the
        // directory rebuilds via assign(), modelled every few ops below.
        if (rc.rep == SharerRep::kFull) {
          s.remove(n);
          ref.erase(n);
        }
      } else {
        s.clear();
        ref.clear();
      }
      // Over-approximation: every reference member is represented.
      for (NodeId m : ref) ASSERT_TRUE(s.contains(m)) << "missing " << +m;
      ASSERT_GE(s.count(), ref.size());
      ASSERT_EQ(s.empty(), s.count() == 0);
      if (rc.exact) {
        ASSERT_EQ(s.to_vector(), sorted(ref));
        ASSERT_EQ(s.count(), ref.size());
      }
      // for_each is ascending and duplicate-free in every representation.
      const auto v = s.to_vector();
      ASSERT_TRUE(std::is_sorted(v.begin(), v.end()));
      ASSERT_EQ(std::adjacent_find(v.begin(), v.end()), v.end());
      for (NodeId m : v) ASSERT_LT(m, rc.nodes);
    }
    // assign() round-trip: re-encoding the expansion may widen the set
    // but never drops a member; for exact reps it is the identity.
    const SharerSet exact = s.expand();
    SharerSet rebuilt(params(rc.rep, rc.nodes, rc.region, rc.pointers));
    rebuilt.assign(exact);
    exact.for_each(
        [&rebuilt](NodeId n) { ASSERT_TRUE(rebuilt.contains(n)); });
    if (rc.exact) ASSERT_EQ(rebuilt.to_vector(), s.to_vector());
  }
}

TEST_P(SharerSetProperty, IntersectIsExact) {
  const RepCase rc = GetParam();
  sim::Rng rng(0xBEEFu + rc.nodes);
  for (int round = 0; round < 20; ++round) {
    SharerSet a(params(rc.rep, rc.nodes, rc.region, rc.pointers));
    SharerSet b(params(rc.rep, rc.nodes, rc.region, rc.pointers));
    for (int i = 0; i < 30; ++i) {
      a.add(static_cast<NodeId>(rng.next_below(rc.nodes)));
      b.add(static_cast<NodeId>(rng.next_below(rc.nodes)));
    }
    const SharerSet isect = SharerSet::intersect(a, b);
    // Exactly the represented members of both.
    isect.for_each([&](NodeId n) {
      ASSERT_TRUE(a.contains(n));
      ASSERT_TRUE(b.contains(n));
    });
    a.for_each([&](NodeId n) {
      if (b.contains(n)) ASSERT_TRUE(isect.contains(n));
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllReps, SharerSetProperty,
    ::testing::Values(
        RepCase{SharerRep::kFull, 16, 1, 4, true},
        RepCase{SharerRep::kFull, 64, 1, 4, true},
        RepCase{SharerRep::kFull, 256, 1, 4, true},
        RepCase{SharerRep::kFull, 1024, 1, 4, true},
        RepCase{SharerRep::kCoarse, 16, 1, 4, true},   // region 1 = exact
        RepCase{SharerRep::kCoarse, 64, 4, 4, false},
        RepCase{SharerRep::kCoarse, 256, 16, 4, false},
        RepCase{SharerRep::kCoarse, 1000, 7, 4, false},  // non-dividing K
        RepCase{SharerRep::kLimited, 16, 1, 16, true},   // cap = nodes
        RepCase{SharerRep::kLimited, 64, 1, 4, false},
        RepCase{SharerRep::kLimited, 1024, 1, 16, false}),
    [](const auto& info) {
      const RepCase& rc = info.param;
      std::string name = to_string(rc.rep);
      name += "_" + std::to_string(rc.nodes);
      name += "n_r" + std::to_string(rc.region);
      name += "_p" + std::to_string(rc.pointers);
      return name;
    });

// Transient (default-constructed) sets: exact full-bit-vector over an
// unbounded domain — what UNBLOCK survivor sets and MSHR nacker sets use.
TEST(SharerSetTransient, UnboundedDomainGrowsOnDemand) {
  SharerSet s;
  s.add(900);
  s.add(2);
  EXPECT_TRUE(s.contains(900));
  EXPECT_EQ(s.to_vector(), (std::vector<NodeId>{2, 900}));
  s.remove(900);
  EXPECT_FALSE(s.contains(900));
}

TEST(SharerSetTransient, EqualityComparesMembership) {
  SharerSet a;
  a.add(1);
  a.add(2);
  SharerSet b(params(SharerRep::kLimited, 16, 4, 4));
  b.add(2);
  b.add(1);
  EXPECT_TRUE(a == b);  // same members, different representations
  b.add(3);
  EXPECT_FALSE(a == b);
}

// sharer_params() derives the directory-entry parameters from the config.
TEST(SharerSetParams, DerivedFromConfig) {
  SystemConfig cfg;
  cfg.num_nodes = 64;
  cfg.noc.mesh_width = 8;
  cfg.dir.sharer_rep = SharerRep::kLimited;
  cfg.dir.limited_pointers = 8;
  const auto p = sharer_params(cfg);
  EXPECT_EQ(p.rep, SharerRep::kLimited);
  EXPECT_EQ(p.num_nodes, 64);
  EXPECT_EQ(p.limited_pointers, 8);
}

}  // namespace
}  // namespace puno::coherence
