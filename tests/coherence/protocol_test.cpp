// Directed protocol tests over the real stack (mesh + directory + L1 +
// TxnContext): MESI transitions, NACK conflict flows, false aborting, and
// writeback handling.
#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace puno::testing {
namespace {

using coherence::Directory;

// Block addresses homed at specific nodes: block k*64 is homed at node k%16.
constexpr Addr block_homed_at(NodeId home, int k = 0) {
  return (static_cast<Addr>(home) + 16ull * k) * 64;
}

class MesiTest : public ProtocolFixture {};

TEST_F(MesiTest, ColdLoadGrantsExclusive) {
  const Addr a = block_homed_at(3);
  EXPECT_TRUE(do_load(0, a));
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kE);
  const auto* e = dirs_[3]->peek(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, Directory::DirState::kEM);
  EXPECT_EQ(e->owner, 0);
  EXPECT_FALSE(e->busy);
}

TEST_F(MesiTest, SecondLoadSharesAndDowngradesOwner) {
  const Addr a = block_homed_at(3);
  ASSERT_TRUE(do_load(0, a));
  ASSERT_TRUE(do_load(1, a));
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kS);
  EXPECT_EQ(l1s_[1]->line_state(a), L1State::kS);
  const auto* e = dirs_[3]->peek(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, Directory::DirState::kS);
  EXPECT_EQ(e->sharers.mask64(), coherence::node_bit(0) | coherence::node_bit(1));
}

TEST_F(MesiTest, ColdStoreGrantsModified) {
  const Addr a = block_homed_at(7);
  EXPECT_TRUE(do_store(2, a));
  EXPECT_EQ(l1s_[2]->line_state(a), L1State::kM);
  const auto* e = dirs_[7]->peek(a);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, Directory::DirState::kEM);
  EXPECT_EQ(e->owner, 2);
}

TEST_F(MesiTest, StoreToExclusiveIsSilentUpgrade) {
  const Addr a = block_homed_at(4);
  ASSERT_TRUE(do_load(1, a));
  ASSERT_EQ(l1s_[1]->line_state(a), L1State::kE);
  const std::uint64_t misses_before = stat("l1.misses");
  EXPECT_TRUE(do_store(1, a));
  EXPECT_EQ(l1s_[1]->line_state(a), L1State::kM);
  EXPECT_EQ(stat("l1.misses"), misses_before) << "E->M needs no protocol";
}

TEST_F(MesiTest, StoreInvalidatesAllSharers) {
  const Addr a = block_homed_at(5);
  ASSERT_TRUE(do_load(0, a));
  ASSERT_TRUE(do_load(1, a));
  ASSERT_TRUE(do_load(2, a));
  EXPECT_TRUE(do_store(3, a));
  EXPECT_EQ(l1s_[3]->line_state(a), L1State::kM);
  EXPECT_EQ(l1s_[0]->line_state(a), std::nullopt);
  EXPECT_EQ(l1s_[1]->line_state(a), std::nullopt);
  EXPECT_EQ(l1s_[2]->line_state(a), std::nullopt);
  const auto* e = dirs_[5]->peek(a);
  EXPECT_EQ(e->state, Directory::DirState::kEM);
  EXPECT_EQ(e->owner, 3);
}

TEST_F(MesiTest, UpgradeFromSharedInvalidatesPeers) {
  const Addr a = block_homed_at(6);
  ASSERT_TRUE(do_load(0, a));
  ASSERT_TRUE(do_load(1, a));
  // Node 0 upgrades its S copy.
  EXPECT_TRUE(do_store(0, a));
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kM);
  EXPECT_EQ(l1s_[1]->line_state(a), std::nullopt);
}

TEST_F(MesiTest, StoreToOwnedLineTransfersOwnership) {
  const Addr a = block_homed_at(2);
  ASSERT_TRUE(do_store(0, a));
  ASSERT_EQ(l1s_[0]->line_state(a), L1State::kM);
  EXPECT_TRUE(do_store(1, a));
  EXPECT_EQ(l1s_[1]->line_state(a), L1State::kM);
  EXPECT_EQ(l1s_[0]->line_state(a), std::nullopt);
  EXPECT_EQ(dirs_[2]->peek(a)->owner, 1);
}

TEST_F(MesiTest, LoadFromModifiedDowngradesOwner) {
  const Addr a = block_homed_at(9);
  ASSERT_TRUE(do_store(4, a));
  EXPECT_TRUE(do_load(5, a));
  EXPECT_EQ(l1s_[4]->line_state(a), L1State::kS);
  EXPECT_EQ(l1s_[5]->line_state(a), L1State::kS);
  const auto* e = dirs_[9]->peek(a);
  EXPECT_EQ(e->state, Directory::DirState::kS);
  EXPECT_EQ(e->sharers.mask64(), coherence::node_bit(4) | coherence::node_bit(5));
}

TEST_F(MesiTest, HomeNodeAccessesWorkLocally) {
  // Node 3 accessing a block homed at node 3: no network traversal needed.
  const Addr a = block_homed_at(3);
  const std::uint64_t before = mesh_->router_traversals();
  EXPECT_TRUE(do_load(3, a));
  EXPECT_EQ(mesh_->router_traversals(), before);
}

TEST_F(MesiTest, CapacityEvictionWritesBackDirtyLine) {
  // Fill one L1 set (4 ways) with dirty lines homed at various nodes, then
  // load a 5th block mapping to the same set: the LRU must be written back.
  const Addr set_stride = 128ull * 64;  // 128 L1 sets
  std::vector<Addr> blocks;
  for (int i = 0; i < 5; ++i) blocks.push_back(i * set_stride);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(do_store(0, blocks[i]));
  const std::uint64_t evictions_before = stat("l1.evictions");
  ASSERT_TRUE(do_load(0, blocks[4]));
  EXPECT_EQ(stat("l1.evictions"), evictions_before + 1);
  EXPECT_EQ(l1s_[0]->line_state(blocks[0]), std::nullopt);
  // Give the PutX time to complete; the directory must return to idle.
  run(2000);
  const auto* e = dirs_[cfg_.home_of(blocks[0])]->peek(blocks[0]);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, Directory::DirState::kI);
}

TEST_F(MesiTest, ReaccessAfterEvictionRefetches) {
  const Addr set_stride = 128ull * 64;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(do_store(0, i * set_stride));
  // Block 0 was evicted; loading it again must miss and refetch.
  EXPECT_TRUE(do_load(0, 0));
  EXPECT_EQ(l1s_[0]->line_state(0), L1State::kE);
}

class ConflictTest : public ProtocolFixture {};

TEST_F(ConflictTest, ReadReadSharingIsNoConflict) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);
  ASSERT_TRUE(do_load(0, a, /*transactional=*/true));
  txns_[2]->begin(0);
  EXPECT_TRUE(do_load(2, a, /*transactional=*/true));
  EXPECT_FALSE(txns_[0]->aborted());
  EXPECT_FALSE(txns_[2]->aborted());
  txns_[0]->commit();
  txns_[2]->commit();
}

TEST_F(ConflictTest, YoungerWriterIsNackedByOlderReader) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // older (begins first)
  ASSERT_TRUE(do_load(0, a, true));
  run(10);
  txns_[1]->begin(0);  // younger
  auto done = async_store(1, a);
  run(3000);
  EXPECT_FALSE(*done) << "younger writer must stall behind older reader";
  EXPECT_FALSE(txns_[0]->aborted()) << "older reader keeps running";
  EXPECT_GT(stat("l1.tx_getx_nacked"), 0u);
  // Once the reader commits, the writer's polling succeeds.
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
  EXPECT_EQ(l1s_[1]->line_state(a), L1State::kM);
  txns_[1]->commit();
}

TEST_F(ConflictTest, OlderWriterAbortsYoungerReader) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // older
  run(10);
  txns_[1]->begin(0);  // younger reader
  ASSERT_TRUE(do_load(1, a, true));
  // Older node 0 now writes: the younger reader must abort.
  ASSERT_TRUE(do_store(0, a, true));
  EXPECT_TRUE(txns_[1]->aborted());
  EXPECT_FALSE(txns_[0]->aborted());
  EXPECT_EQ(l1s_[1]->line_state(a), std::nullopt);
  txns_[0]->commit();
}

TEST_F(ConflictTest, OlderReaderAbortsYoungerWriterOnFwdGetS) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // older
  run(10);
  txns_[1]->begin(0);  // younger writer
  ASSERT_TRUE(do_store(1, a, true));
  // Older node 0 reads: the younger writer must abort and supply data.
  ASSERT_TRUE(do_load(0, a, true));
  EXPECT_TRUE(txns_[1]->aborted());
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kS);
  EXPECT_EQ(stat("htm.aborts_by_gets"), 1u);
  txns_[0]->commit();
}

TEST_F(ConflictTest, YoungerReaderIsNackedByOlderWriter) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // older writer
  ASSERT_TRUE(do_store(0, a, true));
  run(10);
  txns_[1]->begin(0);  // younger reader
  auto done = async_load(1, a);
  run(3000);
  EXPECT_FALSE(*done);
  EXPECT_FALSE(txns_[0]->aborted());
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
  txns_[1]->commit();
}

TEST_F(ConflictTest, FalseAbortingIsDetectedAndCounted) {
  // The paper's Section II.C scenario (Figure 4): a line read-shared by an
  // older transaction (TxA) and two younger ones (TxC, TxD); a mid-priority
  // writer (TxB) multicasts a GETX. TxA nacks; TxC and TxD abort for
  // nothing: one false-aborting event of multiplicity 2.
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // TxA: oldest
  ASSERT_TRUE(do_load(0, a, true));
  run(10);
  txns_[5]->begin(0);  // TxB: requester-to-be (older than C and D)
  run(10);
  txns_[2]->begin(0);  // TxC
  ASSERT_TRUE(do_load(2, a, true));
  txns_[3]->begin(0);  // TxD
  ASSERT_TRUE(do_load(3, a, true));

  auto done = async_store(5, a);
  run(3000);
  EXPECT_FALSE(*done) << "TxA's NACK defeats the request";
  EXPECT_TRUE(txns_[2]->aborted()) << "TxC was falsely aborted";
  EXPECT_TRUE(txns_[3]->aborted()) << "TxD was falsely aborted";
  EXPECT_FALSE(txns_[0]->aborted());
  EXPECT_GE(stat("htm.false_abort_events"), 1u);
  EXPECT_GE(stat("htm.falsely_aborted_txns"), 2u);
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
}

TEST_F(ConflictTest, AbortCancelsOutstandingMiss) {
  const Addr a = block_homed_at(1);
  const Addr b = block_homed_at(2);
  txns_[0]->begin(0);  // older, will own `a`
  ASSERT_TRUE(do_store(0, a, true));
  run(10);
  txns_[1]->begin(0);  // younger: reads b, then stalls requesting a
  ASSERT_TRUE(do_load(1, b, true));
  auto done = async_store(1, a);
  run(2000);
  ASSERT_FALSE(*done);
  // Older node 0 now writes b -> aborts node 1, whose pending store to `a`
  // must be cancelled rather than retried forever.
  ASSERT_TRUE(do_store(0, b, true));
  EXPECT_TRUE(txns_[1]->aborted());
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
  EXPECT_FALSE(l1s_[1]->has_outstanding_miss());
  txns_[0]->commit();
}

TEST_F(ConflictTest, OverflowEvictionAbortsTransaction) {
  // Pin a whole L1 set with transactional lines, then touch a 5th block in
  // the same set: bounded-HTM overflow must abort the transaction.
  const Addr set_stride = 128ull * 64;
  txns_[0]->begin(0);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(do_load(0, i * set_stride, true));
  }
  ASSERT_FALSE(txns_[0]->aborted());
  ASSERT_TRUE(do_load(0, 4 * set_stride, true));
  EXPECT_TRUE(txns_[0]->aborted());
  EXPECT_EQ(stat("htm.aborts_overflow"), 1u);
  EXPECT_EQ(stat("l1.overflow_aborts"), 1u);
}

TEST_F(ConflictTest, NonTransactionalRequesterLosesToTransaction) {
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);
  ASSERT_TRUE(do_load(0, a, true));
  auto done = async_store(1, a, /*transactional=*/false);
  run(3000);
  EXPECT_FALSE(*done) << "non-transactional writer waits for the txn";
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
}

TEST_F(ConflictTest, DuelingUpgradersResolveByPriority) {
  // Two sharers both upgrade the same line: the younger's GETX is nacked by
  // the older sharer; the older's GETX aborts the younger. Exactly one
  // writer emerges, the other retries after the winner commits.
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);  // older
  ASSERT_TRUE(do_load(0, a, true));
  run(10);
  txns_[1]->begin(0);  // younger
  ASSERT_TRUE(do_load(1, a, true));

  auto w0 = async_store(0, a);
  auto w1 = async_store(1, a);
  kernel_.run_until([&] { return *w0; }, 100000);
  EXPECT_TRUE(*w0) << "the older upgrader wins";
  EXPECT_TRUE(txns_[1]->aborted());
  kernel_.run_until([&] { return *w1; }, 100000);
  EXPECT_TRUE(*w1) << "the younger's pending store resolves (cancelled)";
  txns_[0]->commit();
  run(100);
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kM);
}

TEST_F(ConflictTest, RequestToCommittedOwnerSucceedsImmediately) {
  // A transaction writes a line and commits; a later reader must get the
  // data without any NACK (committed state is not a conflict).
  const Addr a = block_homed_at(1);
  txns_[0]->begin(0);
  ASSERT_TRUE(do_store(0, a, true));
  txns_[0]->commit();
  const auto nacked_before = stat("l1.tx_getx_nacked");
  txns_[1]->begin(0);
  EXPECT_TRUE(do_load(1, a, true));
  EXPECT_EQ(stat("l1.tx_getx_nacked"), nacked_before);
  EXPECT_FALSE(txns_[1]->aborted());
  txns_[1]->commit();
}

TEST_F(ConflictTest, ChainOfConflictsResolvesInPriorityOrder) {
  // Three writers pile onto one line in age order; they must all complete
  // eventually, oldest first (the time-base policy's global order).
  const Addr a = block_homed_at(1);
  std::vector<std::shared_ptr<bool>> done;
  for (NodeId n = 0; n < 3; ++n) {
    txns_[n]->begin(0);
    run(5);
  }
  for (NodeId n = 0; n < 3; ++n) done.push_back(async_store(n, a));
  // Oldest (node 0) completes first.
  kernel_.run_until([&] { return *done[0]; }, 200000);
  EXPECT_TRUE(*done[0]);
  txns_[0]->commit();
  kernel_.run_until([&] { return *done[1]; }, 200000);
  EXPECT_TRUE(*done[1]);
  // Node 1 may have been aborted by node 0's winning store (its own store
  // then completed as cancelled); restart it the way a core would.
  if (txns_[1]->aborted()) {
    txns_[1]->begin(0);
    auto retry = async_store(1, a);
    kernel_.run_until([&] { return *retry; }, 200000);
    EXPECT_TRUE(*retry);
  }
  txns_[1]->commit();
  kernel_.run_until([&] { return *done[2]; }, 200000);
  if (txns_[2]->aborted()) {
    txns_[2]->begin(0);
    auto retry = async_store(2, a);
    kernel_.run_until([&] { return *retry; }, 200000);
    EXPECT_TRUE(*retry);
  }
  txns_[2]->commit();
  EXPECT_EQ(l1s_[2]->line_state(a), L1State::kM);
}

TEST_F(ConflictTest, TimestampRetainedAcrossAbortGivesEventualPriority) {
  const Addr a = block_homed_at(1);
  // Node 1 begins first but gets aborted; on retry it keeps its timestamp
  // and therefore out-prioritizes node 0's *new* transaction.
  txns_[1]->begin(0);
  ASSERT_TRUE(do_load(1, a, true));
  run(10);
  txns_[0]->begin(0);
  // Hmm: node 0 is younger, so node 0's write would be nacked. Force the
  // abort with a fresh *older* transaction instead: impossible by
  // construction — so instead abort node 1 via overflow and check the ts.
  const Timestamp ts_before = txns_[1]->current_ts();
  const Addr set_stride = 128ull * 64;
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(do_load(1, i * set_stride, true));
  ASSERT_TRUE(do_load(1, 4 * set_stride, true));
  ASSERT_TRUE(txns_[1]->aborted());
  txns_[1]->begin(0);  // restart
  EXPECT_EQ(txns_[1]->current_ts(), ts_before)
      << "time-base policy: timestamp survives the abort";
  txns_[0]->commit();
  txns_[1]->commit();
}

}  // namespace
}  // namespace puno::testing
