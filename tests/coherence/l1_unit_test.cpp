// L1 controller unit tests: drive handle_message() with hand-crafted
// responses (no directory, no network) to pin down MSHR response-collection
// order-independence, retry/backoff/cancel behaviour and conflict-response
// generation.
#include "coherence/l1_controller.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <unordered_set>

namespace puno::coherence {
namespace {

/// Scriptable transaction-layer stub.
class MockHooks final : public TxnHooks {
 public:
  ConflictVerdict on_remote_request(BlockAddr, bool, Timestamp, NodeId,
                                    bool u_bit) override {
    ++remote_requests;
    ConflictVerdict v = next_verdict;
    if (u_bit && v.decision != ConflictDecision::kNack) {
      v = {ConflictDecision::kNack, 0, true};
    }
    return v;
  }
  [[nodiscard]] bool is_txn_line(BlockAddr addr) const override {
    return pinned.contains(addr);
  }
  void on_overflow_eviction(BlockAddr) override {
    ++overflow_aborts;
    pinned.clear();
  }
  [[nodiscard]] Cycle retry_backoff(Cycle, std::uint32_t) override {
    return backoff;
  }
  void on_getx_outcome(BlockAddr, bool success, std::uint32_t nacks,
                       std::uint32_t aborted) override {
    last_outcome = {success, nacks, aborted};
    ++outcomes;
  }
  [[nodiscard]] Timestamp current_ts() const override { return ts; }
  [[nodiscard]] Cycle avg_txn_len() const override { return 0; }

  ConflictVerdict next_verdict{ConflictDecision::kGrant, 0, false};
  std::unordered_set<BlockAddr> pinned;
  Timestamp ts = kInvalidTimestamp;
  Cycle backoff = 20;
  int remote_requests = 0;
  int overflow_aborts = 0;
  int outcomes = 0;
  struct Outcome {
    bool success;
    std::uint32_t nacks;
    std::uint32_t aborted;
  } last_outcome{};
};

struct SentMsg {
  NodeId dst;
  Message msg;
};

class L1UnitTest : public ::testing::Test {
 protected:
  L1UnitTest() {
    l1_ = std::make_unique<L1Controller>(
        kernel_, cfg_, kNode, hooks_,
        [this](NodeId dst, std::shared_ptr<const Message> m) {
          sent_.push_back({dst, *m});
        });
  }

  SentMsg expect_sent(MsgType type) {
    if (sent_.empty()) {
      ADD_FAILURE() << "expected " << to_string(type) << ", nothing sent";
      return {};
    }
    SentMsg m = sent_.front();
    sent_.pop_front();
    EXPECT_EQ(m.msg.type, type);
    return m;
  }

  /// Delivers a Data response for the outstanding miss.
  void deliver_data(BlockAddr addr, std::uint32_t expected, bool exclusive,
                    bool sole = false) {
    Message m;
    m.type = MsgType::kData;
    m.addr = addr;
    m.sender = cfg_.home_of(addr);
    m.requester = kNode;
    m.exclusive = exclusive;
    m.expected_responses = expected;
    m.sole = sole;
    l1_->handle_message(m);
  }
  void deliver_ack(BlockAddr addr, NodeId from, bool aborted = false) {
    Message m;
    m.type = MsgType::kAck;
    m.addr = addr;
    m.sender = from;
    m.requester = kNode;
    m.responder_aborted = aborted;
    l1_->handle_message(m);
  }
  void deliver_nack(BlockAddr addr, NodeId from, bool sole = false,
                    Cycle notification = 0) {
    Message m;
    m.type = MsgType::kNack;
    m.addr = addr;
    m.sender = from;
    m.requester = kNode;
    m.sole = sole;
    m.notification = notification;
    l1_->handle_message(m);
  }

  static constexpr NodeId kNode = 0;
  sim::Kernel kernel_;
  SystemConfig cfg_;
  MockHooks hooks_;
  std::unique_ptr<L1Controller> l1_;
  std::deque<SentMsg> sent_;
};

TEST_F(L1UnitTest, StoreMissCompletesAfterDataAndAllAcks) {
  bool done = false;
  l1_->store(0x1000, false, [&](bool ok) { done = ok; });
  const SentMsg req = expect_sent(MsgType::kGetX);
  EXPECT_EQ(req.dst, cfg_.home_of(0x1000));

  deliver_data(0x1000, 2, true);
  EXPECT_FALSE(done);
  deliver_ack(0x1000, 3);
  EXPECT_FALSE(done);
  deliver_ack(0x1000, 5);
  EXPECT_TRUE(done);
  const SentMsg ub = expect_sent(MsgType::kUnblock);
  EXPECT_TRUE(ub.msg.success);
  EXPECT_EQ(l1_->line_state(0x1000), L1Controller::LineState::kM);
}

TEST_F(L1UnitTest, AcksBeforeDataAreCountedCorrectly) {
  bool done = false;
  l1_->store(0x1000, false, [&](bool ok) { done = ok; });
  expect_sent(MsgType::kGetX);
  deliver_ack(0x1000, 3);
  deliver_ack(0x1000, 5);
  EXPECT_FALSE(done) << "completion needs the Data (it carries the count)";
  deliver_data(0x1000, 2, true);
  EXPECT_TRUE(done);
  expect_sent(MsgType::kUnblock);
}

TEST_F(L1UnitTest, NackedStoreReportsFailureAndRetriesAfterBackoff) {
  hooks_.backoff = 50;
  bool done = false;
  l1_->store(0x1000, true, [&](bool ok) { done = ok; });
  hooks_.ts = 7;  // inside a "transaction" now
  expect_sent(MsgType::kGetX);

  deliver_data(0x1000, 2, true);
  deliver_ack(0x1000, 3, /*aborted=*/true);
  deliver_nack(0x1000, 5);
  EXPECT_FALSE(done);
  const SentMsg ub = expect_sent(MsgType::kUnblock);
  EXPECT_FALSE(ub.msg.success);
  EXPECT_EQ(ub.msg.surviving_sharers.mask64(), node_bit(5));
  EXPECT_EQ(hooks_.outcomes, 1);
  EXPECT_FALSE(hooks_.last_outcome.success);
  EXPECT_EQ(hooks_.last_outcome.nacks, 1u);
  EXPECT_EQ(hooks_.last_outcome.aborted, 1u);

  kernel_.run_for(49);
  EXPECT_TRUE(sent_.empty()) << "still backing off";
  kernel_.run_for(3);
  expect_sent(MsgType::kGetX);  // the retry ("polling")
}

TEST_F(L1UnitTest, SoleNackResolvesImmediately) {
  bool done = false;
  l1_->store(0x1000, true, [&](bool ok) { done = ok; });
  expect_sent(MsgType::kGetX);
  deliver_nack(0x1000, 5, /*sole=*/true, /*notification=*/300);
  EXPECT_FALSE(done);
  const SentMsg ub = expect_sent(MsgType::kUnblock);
  EXPECT_FALSE(ub.msg.success);
}

TEST_F(L1UnitTest, CancelDuringBackoffFinalizesWithoutRetry) {
  hooks_.backoff = 100;
  bool done = false, ok = true;
  l1_->store(0x1000, true, [&](bool s) {
    done = true;
    ok = s;
  });
  expect_sent(MsgType::kGetX);
  deliver_nack(0x1000, 5, true);
  expect_sent(MsgType::kUnblock);
  l1_->on_local_abort();  // txn died while waiting
  kernel_.run_for(120);
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok) << "cancelled, not completed";
  EXPECT_TRUE(sent_.empty()) << "no retry after cancellation";
  EXPECT_FALSE(l1_->has_outstanding_miss());
}

TEST_F(L1UnitTest, RetryHintCutsBackoffShort) {
  hooks_.backoff = 5000;
  bool done = false;
  l1_->store(0x1000, true, [&](bool s) { done = s; });
  expect_sent(MsgType::kGetX);
  deliver_nack(0x1000, 5, true);
  expect_sent(MsgType::kUnblock);

  kernel_.run_for(10);
  Message hint;
  hint.type = MsgType::kRetryHint;
  hint.addr = 0x1000;
  hint.sender = 5;
  hint.requester = kNode;
  l1_->handle_message(hint);
  expect_sent(MsgType::kGetX);  // immediate re-issue
  // The stale 5000-cycle wakeup must not fire a second request.
  kernel_.run_for(6000);
  EXPECT_TRUE(sent_.empty());
  EXPECT_FALSE(done);
}

TEST_F(L1UnitTest, InvToUnknownLineAcksAsStaleSharer) {
  Message inv;
  inv.type = MsgType::kInv;
  inv.addr = 0x2000;
  inv.sender = cfg_.home_of(0x2000);
  inv.requester = 9;
  l1_->handle_message(inv);
  kernel_.run_for(1);  // the (zero-delay) ack rides a kernel event
  const SentMsg ack = expect_sent(MsgType::kAck);
  EXPECT_EQ(ack.dst, 9);
  EXPECT_FALSE(ack.msg.responder_aborted);
}

TEST_F(L1UnitTest, ConflictNackCarriesNotification) {
  // Install the line as S, then receive an Inv while the hooks say "nack".
  bool done = false;
  l1_->load(0x2000, false, false, [&](bool) { done = true; });
  expect_sent(MsgType::kGetS);
  deliver_data(0x2000, 0, false, true);
  EXPECT_TRUE(done);
  expect_sent(MsgType::kUnblock);

  hooks_.next_verdict = {ConflictDecision::kNack, 333, false};
  Message inv;
  inv.type = MsgType::kInv;
  inv.addr = 0x2000;
  inv.sender = cfg_.home_of(0x2000);
  inv.requester = 9;
  l1_->handle_message(inv);
  const SentMsg nack = expect_sent(MsgType::kNack);
  EXPECT_EQ(nack.dst, 9);
  EXPECT_EQ(nack.msg.notification, 333u);
  EXPECT_EQ(l1_->line_state(0x2000), L1Controller::LineState::kS)
      << "nacked invalidation keeps the line";
}

TEST_F(L1UnitTest, GrantAfterAbortDelaysResponseAndInvalidates) {
  bool done = false;
  l1_->load(0x2000, false, false, [&](bool) { done = true; });
  expect_sent(MsgType::kGetS);
  deliver_data(0x2000, 0, false, true);
  expect_sent(MsgType::kUnblock);
  ASSERT_TRUE(done);

  hooks_.next_verdict = {ConflictDecision::kGrantAfterAbort, 0, false};
  Message inv;
  inv.type = MsgType::kInv;
  inv.addr = 0x2000;
  inv.sender = cfg_.home_of(0x2000);
  inv.requester = 9;
  l1_->handle_message(inv);
  EXPECT_TRUE(sent_.empty()) << "abort-recovery latency delays the ack";
  kernel_.run_for(cfg_.htm.abort_recovery_latency + 1);
  const SentMsg ack = expect_sent(MsgType::kAck);
  EXPECT_TRUE(ack.msg.responder_aborted);
  EXPECT_EQ(l1_->line_state(0x2000), std::nullopt);
}

TEST_F(L1UnitTest, UbitInvNeverInvalidates) {
  bool done = false;
  l1_->load(0x2000, false, false, [&](bool) { done = true; });
  expect_sent(MsgType::kGetS);
  deliver_data(0x2000, 0, false, true);
  expect_sent(MsgType::kUnblock);

  hooks_.next_verdict = {ConflictDecision::kGrant, 0, false};  // no conflict
  Message inv;
  inv.type = MsgType::kInv;
  inv.addr = 0x2000;
  inv.sender = cfg_.home_of(0x2000);
  inv.requester = 9;
  inv.u_bit = true;
  inv.sole = true;
  l1_->handle_message(inv);
  const SentMsg nack = expect_sent(MsgType::kNack);
  EXPECT_TRUE(nack.msg.mp_bit) << "conservative misprediction NACK";
  EXPECT_TRUE(nack.msg.sole);
  EXPECT_NE(l1_->line_state(0x2000), std::nullopt);
}

TEST_F(L1UnitTest, FwdGetSDowngradesAndWritesBack) {
  bool done = false;
  l1_->store(0x2000, false, [&](bool) { done = true; });
  expect_sent(MsgType::kGetX);
  deliver_data(0x2000, 0, true, true);
  expect_sent(MsgType::kUnblock);
  ASSERT_TRUE(done);
  ASSERT_EQ(l1_->line_state(0x2000), L1Controller::LineState::kM);

  Message fwd;
  fwd.type = MsgType::kFwdGetS;
  fwd.addr = 0x2000;
  fwd.sender = cfg_.home_of(0x2000);
  fwd.requester = 9;
  fwd.sole = true;
  l1_->handle_message(fwd);
  kernel_.run_for(2);
  const SentMsg data = expect_sent(MsgType::kData);
  EXPECT_EQ(data.dst, 9);
  EXPECT_FALSE(data.msg.exclusive);
  const SentMsg wb = expect_sent(MsgType::kWbData);
  EXPECT_EQ(wb.dst, cfg_.home_of(0x2000));
  EXPECT_EQ(l1_->line_state(0x2000), L1Controller::LineState::kS);
}

TEST_F(L1UnitTest, MispredictionFeedbackRidesTheUnblock) {
  bool done = false;
  l1_->store(0x1000, true, [&](bool s) { done = s; });
  expect_sent(MsgType::kGetX);
  Message nack;
  nack.type = MsgType::kNack;
  nack.addr = 0x1000;
  nack.sender = 5;
  nack.requester = kNode;
  nack.sole = true;
  nack.mp_bit = true;
  l1_->handle_message(nack);
  const SentMsg ub = expect_sent(MsgType::kUnblock);
  EXPECT_TRUE(ub.msg.mp_bit);
  EXPECT_EQ(ub.msg.mp_node, 5);
  EXPECT_FALSE(done);
}

}  // namespace
}  // namespace puno::coherence
