// L1 edge cases over the real protocol stack: stale-sharer acks, writeback
// races, deferred requests behind writebacks, the load-hit revalidation
// window, and RMW-hint loads.
#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace puno::testing {
namespace {

constexpr Addr block_homed_at(NodeId home, int k = 0) {
  return (static_cast<Addr>(home) + 16ull * k) * 64;
}

class L1EdgeTest : public ProtocolFixture {};

TEST_F(L1EdgeTest, SilentSEvictionLeavesStaleSharerThatAcks) {
  // Fill a set with S lines so one is silently evicted, then have another
  // node write the evicted line: the stale sharer must ack gracefully.
  const Addr set_stride = 128ull * 64;
  // First make node 0 a sharer (not owner) of the target line.
  const Addr target = 0;
  ASSERT_TRUE(do_load(1, target));
  ASSERT_TRUE(do_load(0, target));  // dir: S {1, 0}
  // Evict node 0's S copy silently by filling the set.
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(do_load(0, i * set_stride));
  ASSERT_EQ(l1s_[0]->line_state(target), std::nullopt);
  // Node 2 writes: the directory still lists node 0, which must plain-ack.
  EXPECT_TRUE(do_store(2, target));
  EXPECT_EQ(l1s_[2]->line_state(target), L1State::kM);
  EXPECT_EQ(stat("htm.aborts"), 0u);
}

TEST_F(L1EdgeTest, CleanExclusiveEvictionNotifiesDirectory) {
  // An E (clean) line is evicted with a data-less PutX; the directory must
  // return to I so a later request is serviced from L2, not forwarded.
  const Addr set_stride = 128ull * 64;
  ASSERT_TRUE(do_load(0, 0));  // E grant
  ASSERT_EQ(l1s_[0]->line_state(0), L1State::kE);
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(do_load(0, i * set_stride));
  run(2000);  // let the PutX complete
  const auto* e = dirs_[0]->peek(0);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, coherence::Directory::DirState::kI);
  // A new reader is served without forwarding to node 0.
  EXPECT_TRUE(do_load(3, 0));
  EXPECT_EQ(l1s_[3]->line_state(0), L1State::kE);
}

TEST_F(L1EdgeTest, RequestToBlockWithPendingWritebackIsDeferred) {
  const Addr set_stride = 128ull * 64;
  // Dirty the victim-to-be, then evict it and immediately re-access it.
  ASSERT_TRUE(do_store(0, 0));
  for (int i = 1; i <= 4; ++i) ASSERT_TRUE(do_store(0, i * set_stride));
  // Block 0's PutX may still be in flight; the re-load must be deferred
  // until the WbAck and then complete correctly.
  EXPECT_TRUE(do_load(0, 0, false, false, 200000));
  EXPECT_NE(l1s_[0]->line_state(0), std::nullopt);
  run(2000);
  EXPECT_EQ(dirs_[0]->peek(0)->owner, 0);
}

TEST_F(L1EdgeTest, RmwHintLoadAcquiresExclusive) {
  const Addr a = block_homed_at(2);
  ASSERT_TRUE(do_load(1, a));  // someone else shares the line first
  ASSERT_TRUE(do_load(3, a));
  ASSERT_TRUE(do_load(0, a, /*transactional=*/false,
                      /*exclusive_hint=*/true));
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kE)
      << "an RMW-hinted load installs exclusive";
  EXPECT_EQ(l1s_[1]->line_state(a), std::nullopt) << "sharers invalidated";
  EXPECT_EQ(l1s_[3]->line_state(a), std::nullopt);
  // The subsequent store is then a silent upgrade.
  const auto misses = stat("l1.misses");
  EXPECT_TRUE(do_store(0, a));
  EXPECT_EQ(stat("l1.misses"), misses);
  EXPECT_EQ(l1s_[0]->line_state(a), L1State::kM);
}

TEST_F(L1EdgeTest, UpgradeGrantCarriesNoPayload) {
  // A sole-sharer upgrade is a pure permission grant: compare traffic with
  // a payload-carrying cold store.
  const Addr a = block_homed_at(2);
  ASSERT_TRUE(do_load(0, a));   // E
  ASSERT_TRUE(do_load(1, a));   // downgrade to S {0, 1}
  // Invalidate node 1 via node 0's upgrade; count flits.
  const auto before = mesh_->router_traversals();
  ASSERT_TRUE(do_store(0, a));
  const auto upgrade_flits = mesh_->router_traversals() - before;

  const Addr b = block_homed_at(2, 1);
  ASSERT_TRUE(do_load(1, b));
  ASSERT_TRUE(do_load(0, b));
  const auto before2 = mesh_->router_traversals();
  ASSERT_TRUE(do_store(3, b));  // node 3 has no copy: needs the data
  const auto cold_flits = mesh_->router_traversals() - before2;
  EXPECT_LT(upgrade_flits, cold_flits)
      << "upgrades skip the 4 body flits of the line";
}

TEST_F(L1EdgeTest, BackToBackOwnershipMigration) {
  // The line bounces across four writers; every hop must transfer M and
  // leave exactly one owner.
  const Addr a = block_homed_at(6);
  for (NodeId n = 0; n < 4; ++n) {
    ASSERT_TRUE(do_store(n, a));
    EXPECT_EQ(l1s_[n]->line_state(a), L1State::kM);
    for (NodeId m = 0; m < 4; ++m) {
      if (m != n) EXPECT_EQ(l1s_[m]->line_state(a), std::nullopt);
    }
    EXPECT_EQ(dirs_[6]->peek(a)->owner, n);
  }
}

TEST_F(L1EdgeTest, ReadersAfterWriterGetLatestOwnership) {
  const Addr a = block_homed_at(4);
  ASSERT_TRUE(do_store(2, a));
  for (NodeId n : {NodeId{5}, NodeId{9}, NodeId{12}}) {
    ASSERT_TRUE(do_load(n, a));
    EXPECT_EQ(l1s_[n]->line_state(a), L1State::kS);
  }
  const auto* e = dirs_[4]->peek(a);
  EXPECT_EQ(e->state, coherence::Directory::DirState::kS);
  EXPECT_EQ(e->sharers.count(), 4u) << "writer + 3 readers";
}

TEST_F(L1EdgeTest, WorkingSetLargerThanL1RunsCorrectly) {
  // Stream through 3x the L1 capacity; every access must complete and the
  // system must stay consistent (exercises eviction/writeback continuously)
  const std::uint32_t blocks = 3 * 32 * 1024 / 64;
  for (std::uint32_t i = 0; i < blocks; ++i) {
    const Addr a = static_cast<Addr>(i) * 64;
    if (i % 3 == 0) {
      ASSERT_TRUE(do_store(0, a, false, 300000)) << "block " << i;
    } else {
      ASSERT_TRUE(do_load(0, a, false, false, 300000)) << "block " << i;
    }
  }
  EXPECT_GT(stat("l1.evictions"), 0u);
  run(3000);
  EXPECT_TRUE(mesh_->idle());
}

TEST_F(L1EdgeTest, SixteenWritersOneLineAllSucceed) {
  // Ownership ping-pong under full fan-in, non-transactional: all sixteen
  // stores must complete (queued at the blocking directory).
  const Addr a = block_homed_at(8);
  std::vector<std::shared_ptr<bool>> done;
  for (NodeId n = 0; n < 16; ++n) {
    done.push_back(async_store(n, a, /*transactional=*/false));
  }
  kernel_.run_until(
      [&] {
        for (const auto& d : done) {
          if (!*d) return false;
        }
        return true;
      },
      500000);
  for (const auto& d : done) EXPECT_TRUE(*d);
  run(2000);
  EXPECT_EQ(dirs_[8]->peek(a)->state, coherence::Directory::DirState::kEM);
}

}  // namespace
}  // namespace puno::testing
