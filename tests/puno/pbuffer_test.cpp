#include "puno/pbuffer.hpp"

#include <gtest/gtest.h>

namespace puno::core {
namespace {

TEST(PBuffer, EntriesStartInvalid) {
  PBuffer p(16);
  for (NodeId n = 0; n < 16; ++n) {
    EXPECT_EQ(p.get(n).validity, 0);
    EXPECT_EQ(p.get(n).ts, kInvalidTimestamp);
    EXPECT_FALSE(p.usable(n));
  }
}

TEST(PBuffer, UpdateFromZeroIncrementsTwice) {
  // Figure 5(b): updating a 0-validity entry bumps the counter by two, so a
  // freshly revived priority survives one timeout.
  PBuffer p(16);
  p.update(3, 100);
  EXPECT_EQ(p.get(3).validity, 2);
  EXPECT_EQ(p.get(3).ts, 100u);
  EXPECT_TRUE(p.usable(3));
}

TEST(PBuffer, RepeatedUpdatesSaturateAtThree) {
  PBuffer p(16);
  p.update(3, 100);
  p.update(3, 110);
  EXPECT_EQ(p.get(3).validity, 3);
  p.update(3, 120);
  EXPECT_EQ(p.get(3).validity, 3);
  EXPECT_EQ(p.get(3).ts, 120u) << "timestamp always refreshed";
}

TEST(PBuffer, TimeoutDecrementsAllNonZero) {
  PBuffer p(16);
  p.update(1, 100);  // validity 2
  p.update(2, 200);
  p.update(2, 210);  // validity 3
  p.on_timeout();
  EXPECT_EQ(p.get(1).validity, 1);
  EXPECT_EQ(p.get(2).validity, 2);
  EXPECT_EQ(p.get(0).validity, 0) << "zero stays zero";
}

TEST(PBuffer, StalePriorityBecomesUnusableAfterTimeouts) {
  PBuffer p(16);
  p.update(1, 100);  // validity 2: usable
  ASSERT_TRUE(p.usable(1));
  p.on_timeout();  // validity 1: not usable (threshold is > 1)
  EXPECT_FALSE(p.usable(1));
  p.on_timeout();  // validity 0
  EXPECT_EQ(p.get(1).validity, 0);
}

TEST(PBuffer, MispredictionInvalidatesImmediately) {
  PBuffer p(16);
  p.update(5, 100);
  p.update(5, 100);
  ASSERT_TRUE(p.usable(5));
  p.invalidate(5);
  EXPECT_EQ(p.get(5).validity, 0);
  EXPECT_FALSE(p.usable(5));
}

TEST(PBuffer, ReviveAfterInvalidationIsUsableAgain) {
  PBuffer p(16);
  p.update(5, 100);
  p.invalidate(5);
  p.update(5, 300);
  EXPECT_TRUE(p.usable(5));
  EXPECT_EQ(p.get(5).ts, 300u);
}

TEST(PBuffer, UsableRespectsThreshold) {
  PBuffer p(16);
  p.update(1, 100);  // validity 2
  EXPECT_TRUE(p.usable(1, 1));
  EXPECT_FALSE(p.usable(1, 2)) << "stricter threshold requires validity 3";
  p.update(1, 100);  // validity 3
  EXPECT_TRUE(p.usable(1, 2));
}

TEST(PBuffer, SizeMatchesConstruction) {
  PBuffer p(16);
  EXPECT_EQ(p.size(), 16u);
}


TEST(PBuffer, UnboundedFormNeverEvicts) {
  PBuffer p(16);
  EXPECT_EQ(p.capacity(), 16u);
  for (NodeId n = 0; n < 16; ++n) p.update(n, 100 + n);
  EXPECT_EQ(p.tracked_count(), 16u);
  EXPECT_EQ(p.evictions(), 0u);
}

TEST(PBuffer, CapacityZeroMeansOnePerNode) {
  PBuffer p(0, 64);
  EXPECT_EQ(p.capacity(), 64u);
  EXPECT_EQ(p.size(), 64u);
}

TEST(PBuffer, EvictsLowestValidityFirst) {
  PBuffer p(2, 8);
  p.update(1, 100);  // validity 2
  p.update(2, 200);  // validity 2
  p.update(2, 200);  // validity 3
  p.on_timeout();    // 1 -> 1, 2 -> 2
  p.update(5, 50);   // full: evict node 1 (lowest validity)
  EXPECT_EQ(p.evictions(), 1u);
  EXPECT_FALSE(p.tracked(1));
  EXPECT_TRUE(p.tracked(2));
  EXPECT_TRUE(p.tracked(5));
  // The evicted node reads as an empty entry.
  EXPECT_EQ(p.get(1).ts, kInvalidTimestamp);
  EXPECT_EQ(p.get(1).validity, 0u);
}

TEST(PBuffer, EvictionTieBreaksOnYoungestTimestampThenHighestId) {
  // Equal validity: the youngest (largest) timestamp goes first -- it holds
  // the lowest priority and is least likely to win a conflict anyway.
  PBuffer p(2, 8);
  p.update(3, 100);
  p.update(6, 900);
  p.update(0, 500);  // evicts node 6 (ts 900 youngest)
  EXPECT_FALSE(p.tracked(6));
  EXPECT_TRUE(p.tracked(3));
  EXPECT_TRUE(p.tracked(0));

  // Equal validity AND equal timestamp: highest node id goes first.
  PBuffer q(2, 8);
  q.update(2, 400);
  q.update(7, 400);
  q.update(1, 100);  // evicts node 7
  EXPECT_FALSE(q.tracked(7));
  EXPECT_TRUE(q.tracked(2));
  EXPECT_EQ(q.evictions(), 1u);
}

TEST(PBuffer, UpdateOfTrackedNodeNeverEvicts) {
  PBuffer p(2, 8);
  p.update(1, 100);
  p.update(2, 200);
  p.update(1, 150);  // refresh, not an insertion
  EXPECT_EQ(p.evictions(), 0u);
  EXPECT_EQ(p.tracked_count(), 2u);
  EXPECT_EQ(p.get(1).ts, 150u);
}

TEST(PBuffer, InvalidatedEntryStaysTrackedAndEvictsFirst) {
  PBuffer p(2, 8);
  p.update(1, 100);
  p.update(2, 200);
  p.invalidate(2);           // validity 0, still occupies a slot
  EXPECT_TRUE(p.tracked(2));
  p.update(3, 50);           // node 2 is the clear victim
  EXPECT_FALSE(p.tracked(2));
  EXPECT_TRUE(p.tracked(1));
  EXPECT_TRUE(p.tracked(3));
}

}  // namespace
}  // namespace puno::core
