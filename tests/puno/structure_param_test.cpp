// Parameterized sweeps over the PUNO hardware-structure capacities: the
// structures must behave identically in kind (only in degree) at any size.
#include <gtest/gtest.h>

#include "htm/txlb.hpp"
#include "puno/pbuffer.hpp"
#include "sim/rng.hpp"

namespace puno {
namespace {

class TxLBCapacity : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TxLBCapacity, NeverExceedsCapacity) {
  htm::TxLB t(GetParam());
  sim::Rng rng(1, GetParam());
  for (int i = 0; i < 500; ++i) {
    t.on_commit(static_cast<StaticTxId>(rng.next_below(100)),
                rng.next_range(10, 1000));
    ASSERT_LE(t.size(), GetParam());
  }
}

TEST_P(TxLBCapacity, HotEntriesSurviveEvictionPressure) {
  htm::TxLB t(GetParam());
  // Entry 0 is refreshed between every burst of one-shot entries.
  for (StaticTxId burst = 1; burst < 200; ++burst) {
    t.on_commit(0, 100);
    t.on_commit(burst + 1000, 50);
  }
  if (GetParam() >= 2) {
    EXPECT_NE(t.estimate(0), 0u) << "the constantly-updated entry survives";
  } else {
    // A single-entry buffer degenerates to last-write-wins.
    EXPECT_NE(t.estimate(199 + 1000), 0u);
  }
}

TEST_P(TxLBCapacity, EstimatesStayPositiveAndBounded) {
  htm::TxLB t(GetParam());
  sim::Rng rng(3, GetParam());
  for (int i = 0; i < 300; ++i) {
    const auto id = static_cast<StaticTxId>(rng.next_below(8));
    t.on_commit(id, rng.next_range(100, 200));
    const Cycle est = t.estimate(id);
    ASSERT_GE(est, 50u);
    ASSERT_LE(est, 400u) << "formula (1) cannot escape the sample range";
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TxLBCapacity,
                         ::testing::Values(1u, 2u, 8u, 32u, 128u),
                         [](const auto& info) {
                           return "cap" + std::to_string(info.param);
                         });

class PBufferSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PBufferSize, ValidityLifecycleHoldsAtAnySize) {
  core::PBuffer pb(GetParam());
  for (NodeId n = 0; n < GetParam(); ++n) {
    pb.update(n, n + 1);
    ASSERT_TRUE(pb.usable(n));
  }
  pb.on_timeout();
  for (NodeId n = 0; n < GetParam(); ++n) ASSERT_FALSE(pb.usable(n));
  // A refresh revives any entry.
  pb.update(0, 99);
  EXPECT_TRUE(pb.usable(0));
}

TEST_P(PBufferSize, InvalidationIsIndependentPerEntry) {
  core::PBuffer pb(GetParam());
  for (NodeId n = 0; n < GetParam(); ++n) pb.update(n, n + 1);
  pb.invalidate(0);
  EXPECT_FALSE(pb.usable(0));
  for (NodeId n = 1; n < GetParam(); ++n) ASSERT_TRUE(pb.usable(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PBufferSize,
                         ::testing::Values(1u, 4u, 16u, 64u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace puno
