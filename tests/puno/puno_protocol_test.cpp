// Directed end-to-end tests of the PUNO mechanisms over the full protocol
// stack (mesh + directories + L1s + TxnContexts + PunoDirectory assists):
// the Figure 8 walk-through scenarios.
#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace puno::testing {
namespace {

constexpr Addr block_homed_at(NodeId home, int k = 0) {
  return (static_cast<Addr>(home) + 16ull * k) * 64;
}

class PunoFlow : public ProtocolFixture {
 protected:
  // Directed walk-throughs take hundreds of idle cycles between steps, so
  // freeze the P-Buffer staleness decay (the adaptive timeout is exercised
  // by its own unit tests); predictions here reflect the Figure 8 snapshots.
  PunoFlow() : ProtocolFixture(make_config()) {}
  static SystemConfig make_config() {
    SystemConfig cfg;
    cfg.scheme = Scheme::kPuno;
    cfg.puno.min_timeout = 1u << 20;
    cfg.puno.max_timeout = 1u << 20;
    return cfg;
  }

  /// Figure 4/8 cast: TxA oldest reader, TxC/TxD younger readers, TxB a
  /// mid-priority writer. Returns the contended address.
  Addr setup_figure4(NodeId a = 0, NodeId b = 5, NodeId c = 2, NodeId d = 3) {
    const Addr addr = block_homed_at(1);
    txns_[a]->begin(0);
    EXPECT_TRUE(do_load(a, addr, true));
    run(10);
    txns_[b]->begin(0);
    run(10);
    txns_[c]->begin(0);
    EXPECT_TRUE(do_load(c, addr, true));
    txns_[d]->begin(0);
    EXPECT_TRUE(do_load(d, addr, true));
    return addr;
  }
};

TEST_F(PunoFlow, PBufferLearnsFromTransactionalRequests) {
  const Addr addr = block_homed_at(1);
  txns_[0]->begin(0);
  ASSERT_TRUE(do_load(0, addr, true));
  const auto& pbuf = assists_[1]->pbuffer();
  EXPECT_TRUE(pbuf.usable(0)) << "node 0's priority learned at home 1";
  EXPECT_EQ(pbuf.get(0).ts, txns_[0]->current_ts());
}

TEST_F(PunoFlow, UdPointerTracksOldestSharer) {
  const Addr addr = setup_figure4();
  run(50);
  const auto* e = dirs_[1]->peek(addr);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->ud, 0) << "TxA (node 0) is the oldest sharer";
}

TEST_F(PunoFlow, UnicastSparesConcurrentSharers) {
  // The paper's headline scenario: TxB's GETX is unicast to TxA only;
  // TxC and TxD keep running (no false aborting).
  const Addr addr = setup_figure4();
  auto done = async_store(5, addr);
  run(3000);
  EXPECT_FALSE(*done) << "TxA nacks the unicast";
  EXPECT_FALSE(txns_[2]->aborted()) << "TxC undisturbed";
  EXPECT_FALSE(txns_[3]->aborted()) << "TxD undisturbed";
  EXPECT_FALSE(txns_[0]->aborted());
  EXPECT_GT(stat("dir.unicast_forwards"), 0u);
  EXPECT_EQ(stat("htm.false_abort_events"), 0u);
  // TxC and TxD still hold their lines.
  EXPECT_NE(l1s_[2]->line_state(addr), std::nullopt);
  EXPECT_NE(l1s_[3]->line_state(addr), std::nullopt);
  // When TxA commits, TxB eventually wins (the stale prediction is corrected
  // through misprediction feedback and a multicast retry).
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
  EXPECT_TRUE(*done);
  EXPECT_EQ(l1s_[5]->line_state(addr), L1State::kM);
}

TEST_F(PunoFlow, UnicastNeverInvalidatesTheDestination) {
  const Addr addr = setup_figure4();
  auto done = async_store(5, addr);
  run(3000);
  ASSERT_FALSE(*done);
  EXPECT_EQ(l1s_[0]->line_state(addr), L1State::kS)
      << "the unicast NACK leaves TxA's copy intact";
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
}

TEST_F(PunoFlow, MispredictionFeedbackInvalidatesStalePriority) {
  // Figure 8(c2): the predicted nacker's transaction has committed; the
  // unicast must be conservatively nacked with the MP-bit, and the UNBLOCK
  // feedback must invalidate the stale P-Buffer entry.
  const Addr addr = setup_figure4();
  txns_[0]->commit();  // TxA finishes; home 1's P-Buffer entry is now stale
  run(5);
  auto done = async_store(5, addr);
  kernel_.run_until([&] { return *done; }, 200000);
  EXPECT_TRUE(*done);
  EXPECT_GT(stat("dir.mp_feedbacks"), 0u)
      << "stale prediction must be reported and corrected";
  // The MP invalidation must have cleared node 0's entry at home 1 (it may
  // have been refreshed afterwards only by a new request, which node 0 did
  // not issue).
  EXPECT_FALSE(assists_[1]->pbuffer().usable(0));
}

TEST_F(PunoFlow, NotificationCarriesRemainingRunningTime) {
  // Train the TxLB at node 0 with a ~400-cycle transaction, then nack a
  // younger writer: the notified backoff must reflect the remaining time.
  const Addr addr = block_homed_at(1);
  txns_[0]->begin(7);
  ASSERT_TRUE(do_load(0, addr, true));
  run(400);
  txns_[0]->commit();
  run(10);

  txns_[0]->begin(7);  // second instance: TxLB now has an estimate
  ASSERT_TRUE(do_load(0, addr, true));
  run(10);
  txns_[1]->begin(0);
  auto done = async_store(1, addr);
  run(2000);
  EXPECT_FALSE(*done);
  EXPECT_GT(stat("htm.notified_backoffs"), 0u)
      << "the requester entered notification-guided backoff";
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
  EXPECT_TRUE(*done);
}

TEST_F(PunoFlow, NoUnicastWhenRequesterIsOldest) {
  // The oldest writer is predicted to win: normal multicast, and the
  // younger readers are (correctly) aborted.
  const Addr addr = block_homed_at(1);
  txns_[0]->begin(0);  // oldest, will write
  run(10);
  txns_[2]->begin(0);
  ASSERT_TRUE(do_load(2, addr, true));
  txns_[3]->begin(0);
  ASSERT_TRUE(do_load(3, addr, true));
  ASSERT_TRUE(do_store(0, addr, true));
  EXPECT_TRUE(txns_[2]->aborted());
  EXPECT_TRUE(txns_[3]->aborted());
  EXPECT_EQ(stat("htm.false_abort_events"), 0u)
      << "these aborts are real conflicts, not false aborting";
}

TEST_F(PunoFlow, SingleSharerLinesAreNeverUnicast) {
  const Addr addr = block_homed_at(1);
  txns_[0]->begin(0);
  ASSERT_TRUE(do_load(0, addr, true));
  run(10);
  txns_[1]->begin(0);
  auto done = async_store(1, addr);
  run(2000);
  EXPECT_EQ(stat("dir.unicast_forwards"), 0u)
      << "a lone sharer cannot cause false aborting";
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
  EXPECT_TRUE(*done);
}

TEST_F(PunoFlow, DirectoryBlockingShorterUnderUnicast) {
  // A unicast needs one response; a multicast to three sharers needs the
  // data plus three responses. Compare the dir-blocked window directly.
  const Addr addr = setup_figure4();
  auto done = async_store(5, addr);
  run(3000);
  ASSERT_FALSE(*done);
  const double blocked = kernel_.stats()
                             .scalar("dir.txgetx_blocked_cycles")
                             .mean();
  EXPECT_GT(blocked, 0.0);
  // A one-forward round trip in a 4x4 mesh stays well under 120 cycles;
  // multicast windows with data fetch (20-200 cycles) plus 3 responders
  // would exceed it.
  EXPECT_LT(blocked, 120.0);
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
}

TEST_F(PunoFlow, FallbackMulticastStillDetectsFalseAborts) {
  // Disable unicast via config: PUNO's accounting still observes the false
  // aborting that notification alone cannot prevent.
  cfg_.puno.enable_unicast = false;  // affects assists through the shared cfg
  const Addr addr = setup_figure4();
  auto done = async_store(5, addr);
  run(3000);
  EXPECT_FALSE(*done);
  EXPECT_TRUE(txns_[2]->aborted());
  EXPECT_TRUE(txns_[3]->aborted());
  EXPECT_GE(stat("htm.false_abort_events"), 1u);
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 200000);
}

}  // namespace
}  // namespace puno::testing
