// Commit-hint extension (DESIGN.md / paper Section VI future work): a
// finishing nacker tells its waiting requesters to retry, cutting the
// oversleep of an overestimated notification.
#include <gtest/gtest.h>

#include "../support/fixture.hpp"

namespace puno::testing {
namespace {

constexpr Addr block_homed_at(NodeId home, int k = 0) {
  return (static_cast<Addr>(home) + 16ull * k) * 64;
}

class CommitHintTest : public ProtocolFixture {
 protected:
  CommitHintTest() : ProtocolFixture(make_config()) {}
  static SystemConfig make_config() {
    SystemConfig cfg;
    cfg.scheme = Scheme::kPuno;
    cfg.puno.enable_commit_hint = true;
    cfg.puno.min_timeout = 1u << 20;  // freeze decay for directed scenarios
    cfg.puno.max_timeout = 1u << 20;
    return cfg;
  }

  /// Trains node 0's TxLB so its NACKs carry a large notification, then
  /// makes node 1 wait on node 0's line.
  Addr setup_long_nacker() {
    const Addr addr = block_homed_at(1);
    txns_[0]->begin(3);
    EXPECT_TRUE(do_load(0, addr, true));
    run(3000);
    txns_[0]->commit();  // TxLB[3] ~ 3000 cycles
    run(10);
    txns_[0]->begin(3);
    EXPECT_TRUE(do_load(0, addr, true));
    run(10);
    txns_[1]->begin(0);
    return addr;
  }
};

TEST_F(CommitHintTest, HintWakesWaiterLongBeforeNotificationExpires) {
  const Addr addr = setup_long_nacker();
  auto done = async_store(1, addr);
  run(1000);
  ASSERT_FALSE(*done);
  ASSERT_GT(stat("htm.notified_backoffs"), 0u)
      << "the waiter slept on a ~3000-cycle estimate";

  // Node 0 commits early (after ~1000 of the estimated ~3000 cycles); the
  // hint must wake node 1 well before the estimate would have expired.
  const Cycle commit_at = kernel_.now();
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
  EXPECT_GT(stat("htm.commit_hints_sent"), 0u);
  EXPECT_GT(stat("l1.hint_wakeups"), 0u);
  EXPECT_LT(kernel_.now() - commit_at, 500u)
      << "without the hint the waiter would sleep ~2000 more cycles";
}

TEST_F(CommitHintTest, AbortAlsoReleasesWaiters) {
  const Addr addr = setup_long_nacker();
  auto done = async_store(1, addr);
  run(1000);
  ASSERT_FALSE(*done);

  // A third, older transaction aborts node 0 -> node 0's claim disappears
  // and its waiters must be released. Use an overflow abort to avoid
  // introducing another contender for `addr` itself.
  const Addr set_stride = 128ull * 64;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(do_load(0, 1 * 64 + i * set_stride, true, false, 300000));
  }
  ASSERT_TRUE(do_load(0, 1 * 64 + 4 * set_stride, true, false, 300000));
  ASSERT_TRUE(txns_[0]->aborted());

  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done) << "the waiter retried after the abort hint";
  EXPECT_GT(stat("l1.hint_wakeups"), 0u);
}

TEST_F(CommitHintTest, NoHintsWhenExtensionDisabled) {
  cfg_.puno.enable_commit_hint = false;  // components read the shared cfg
  const Addr addr = setup_long_nacker();
  auto done = async_store(1, addr);
  run(1000);
  ASSERT_FALSE(*done);
  txns_[0]->commit();
  kernel_.run_until([&] { return *done; }, 100000);
  EXPECT_TRUE(*done);
  EXPECT_EQ(stat("htm.commit_hints_sent"), 0u);
  EXPECT_EQ(stat("l1.hint_wakeups"), 0u);
}

TEST_F(CommitHintTest, HintForIdleLineIsHarmless) {
  // A hint arriving when nothing waits (the retry already happened) must be
  // ignored without disturbing the MSHR-less L1.
  const Addr addr = block_homed_at(1);
  auto hint = coherence::Message::make(coherence::MsgType::kRetryHint, addr,
                                       /*sender=*/0, /*requester=*/2);
  l1s_[2]->handle_message(*hint);
  run(10);
  EXPECT_EQ(stat("l1.hint_wakeups"), 0u);
  EXPECT_TRUE(do_load(2, addr));
}

TEST_F(CommitHintTest, WaiterBufferIsBounded) {
  // More distinct waiters than commit_hint_entries: the buffer must drop
  // oldest entries rather than grow; the run stays correct.
  const Addr base_addr = block_homed_at(1);
  txns_[0]->begin(0);
  for (int k = 0; k < 12; ++k) {
    ASSERT_TRUE(do_load(0, block_homed_at(1, k), true, false, 300000));
  }
  // 12 younger writers pile onto node 0's read set.
  std::vector<std::shared_ptr<bool>> done;
  run(10);
  for (NodeId n = 1; n <= 12; ++n) {
    txns_[n]->begin(0);
    done.push_back(async_store(n, block_homed_at(1, n - 1)));
  }
  run(4000);
  txns_[0]->commit();
  kernel_.run_until(
      [&] {
        for (const auto& d : done) {
          if (!*d) return false;
        }
        return true;
      },
      500000);
  for (const auto& d : done) EXPECT_TRUE(*d);
  EXPECT_LE(stat("htm.commit_hints_sent"), cfg_.puno.commit_hint_entries);
  (void)base_addr;
}

}  // namespace
}  // namespace puno::testing
