#include "puno/puno_directory.hpp"

#include <gtest/gtest.h>

#include <initializer_list>

#include "coherence/message.hpp"
#include "coherence/sharer_set.hpp"

namespace puno::core {
namespace {

using coherence::SharerSet;

/// Exact sharer set over the listed nodes.
SharerSet S(std::initializer_list<NodeId> nodes) {
  SharerSet s;
  for (NodeId n : nodes) s.add(n);
  return s;
}

class PunoDirectoryTest : public ::testing::Test {
 protected:
  PunoDirectoryTest() {
    cfg_.scheme = Scheme::kPuno;
    pd_ = std::make_unique<PunoDirectory>(kernel_, cfg_, 0);
  }

  sim::Kernel kernel_;
  SystemConfig cfg_;
  std::unique_ptr<PunoDirectory> pd_;
};

TEST_F(PunoDirectoryTest, PredictionLatencyIsTwoCycles) {
  // Section IV.A: 1 cycle P-Buffer access + 1 cycle unicast decision.
  EXPECT_EQ(pd_->prediction_latency(), 2u);
}

TEST_F(PunoDirectoryTest, NoPredictionWithoutObservations) {
  EXPECT_EQ(pd_->predict_unicast(S({1, 2}), 5, 100, 1),
            kInvalidNode);
}

TEST_F(PunoDirectoryTest, RecomputeUdPicksOldestSharer) {
  pd_->observe_request(1, 300, 0);
  pd_->observe_request(2, 100, 0);  // oldest
  pd_->observe_request(3, 200, 0);
  EXPECT_EQ(pd_->recompute_ud(S({1, 2, 3})), 2);
}

TEST_F(PunoDirectoryTest, RecomputeUdIgnoresNonSharers) {
  pd_->observe_request(1, 300, 0);
  pd_->observe_request(2, 100, 0);
  EXPECT_EQ(pd_->recompute_ud(S({1})), 1) << "node 2 is not a sharer";
}

TEST_F(PunoDirectoryTest, RecomputeUdEmptyMaskIsInvalid) {
  pd_->observe_request(1, 300, 0);
  EXPECT_EQ(pd_->recompute_ud(SharerSet{}), kInvalidNode);
}

TEST_F(PunoDirectoryTest, UnicastWhenUdSharerIsOlderThanRequester) {
  pd_->observe_request(1, 100, 0);
  pd_->observe_request(2, 400, 0);
  const SharerSet sharers = S({1, 2});
  const NodeId ud = pd_->recompute_ud(sharers);
  ASSERT_EQ(ud, 1);
  EXPECT_EQ(pd_->predict_unicast(sharers, 5, /*req_ts=*/500, ud), 1);
}

TEST_F(PunoDirectoryTest, NoUnicastForSingleSharer) {
  // A lone sharer cannot produce false aborting (it either nacks, aborting
  // nobody, or grants), so unicasting to it would only waste a round trip.
  pd_->observe_request(1, 100, 0);
  EXPECT_EQ(pd_->predict_unicast(S({1}), 5, 500, 1), kInvalidNode);
}

TEST_F(PunoDirectoryTest, MulticastWhenRequesterIsOlder) {
  pd_->observe_request(1, 500, 0);
  EXPECT_EQ(pd_->predict_unicast(S({1}), 5, /*req_ts=*/100, 1),
            kInvalidNode);
}

TEST_F(PunoDirectoryTest, MulticastWhenUdHintNotASharer) {
  pd_->observe_request(1, 100, 0);
  EXPECT_EQ(pd_->predict_unicast(S({2}), 5, 500, /*ud_hint=*/1),
            kInvalidNode);
}

TEST_F(PunoDirectoryTest, MispredictionFeedbackDisablesUnicast) {
  pd_->observe_request(1, 100, 0);
  pd_->observe_request(2, 900, 0);
  const SharerSet sharers = S({1, 2});
  ASSERT_EQ(pd_->predict_unicast(sharers, 5, 500, 1), 1);
  pd_->on_misprediction(1);
  EXPECT_EQ(pd_->predict_unicast(sharers, 5, 500, 1), kInvalidNode);
  // A fresh request from node 1 revives it.
  pd_->observe_request(1, 600, 0);
  EXPECT_EQ(pd_->predict_unicast(sharers, 5, 700, 1), 1);
}

TEST_F(PunoDirectoryTest, ValidityAgesOutThroughRolloverTimeouts) {
  pd_->observe_request(1, 100, /*avg_txn_len=*/0);
  pd_->observe_request(2, 800, /*avg_txn_len=*/0);
  const SharerSet sharers = S({1, 2});
  ASSERT_EQ(pd_->predict_unicast(sharers, 5, 500, 1), 1);
  // validity 2 -> after one rollover period it is 1: below the threshold.
  kernel_.run_for(pd_->timeout_period() + 2);
  EXPECT_EQ(pd_->predict_unicast(sharers, 5, 500, 1), kInvalidNode);
}

TEST_F(PunoDirectoryTest, TimeoutPeriodAdaptsToTransactionLength) {
  const Cycle initial = pd_->timeout_period();
  EXPECT_EQ(initial, cfg_.puno.min_timeout);
  for (int i = 0; i < 8; ++i) pd_->observe_request(1, 100, /*avg=*/5000);
  EXPECT_GT(pd_->timeout_period(), initial);
  EXPECT_LE(pd_->timeout_period(), cfg_.puno.max_timeout);
}

TEST_F(PunoDirectoryTest, TimeoutPeriodClampedToMax) {
  for (int i = 0; i < 40; ++i) {
    pd_->observe_request(1, 100, cfg_.puno.max_timeout * 10);
  }
  EXPECT_EQ(pd_->timeout_period(), static_cast<Cycle>(cfg_.puno.max_timeout));
}

TEST_F(PunoDirectoryTest, UnicastDisabledByAblationSwitch) {
  cfg_.puno.enable_unicast = false;
  PunoDirectory pd(kernel_, cfg_, 1);
  pd.observe_request(1, 100, 0);
  EXPECT_EQ(pd.predict_unicast(S({1}), 5, 500, 1), kInvalidNode);
}

TEST_F(PunoDirectoryTest, PredictionStatsTracked) {
  pd_->observe_request(1, 100, 0);
  pd_->observe_request(2, 900, 0);
  const SharerSet sharers = S({1, 2});
  (void)pd_->predict_unicast(sharers, 5, 500, 1);
  (void)pd_->predict_unicast(sharers, 5, 50, 1);  // requester older
  EXPECT_EQ(kernel_.stats().counter("puno.unicast_predictions").value(), 1u);
  EXPECT_EQ(kernel_.stats().counter("puno.multicast_fallbacks").value(), 1u);
}

}  // namespace
}  // namespace puno::core
